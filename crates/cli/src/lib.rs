//! Implementation of the `prop` command-line tool.
//!
//! Subcommands:
//!
//! * `prop stats <file>` — parse a netlist and print its size parameters.
//! * `prop generate --nodes N --nets E --pins P [--seed S] [--out F]` —
//!   synthesise a clustered circuit; `--circuit <name>` instead
//!   instantiates a Table-1 proxy.
//! * `prop convert <in> <out>` — convert between `.hgr` and `.netd`.
//! * `prop partition <file> [--method M] [--r1 X --r2 Y] [--runs N]
//!   [--seed S] [--assign F]` — bipartition a netlist and report the cut;
//!   methods: `prop` (default), `prop-paper`, `fm`, `fm-tree`, `la2`,
//!   `la3`, `kl`, `sa`, `eig1`, `melo`, `paraboli`, `window`, `ml`.
//! * `prop serve [--addr A] [--workers N] [--queue-cap N]
//!   [--store-dir D] [--coordinator W1,W2,...] [--heartbeat-ms N]
//!   [--retries N]` — run the partitioning daemon until a `shutdown`
//!   request drains it; `--coordinator` additionally shards `batch`
//!   sweeps across the listed worker daemons.
//! * `prop submit (<file> | --circuit-id ID) [--addr A] [--engine E]
//!   [--runs N] [--seed S] [--timeout-ms T] [--priority P] [--no-wait]` —
//!   send a netlist (or reference a stored circuit) to a running daemon
//!   and print the one-line JSON response.
//! * `prop batch --circuit-id ID [--addr A] [--engines E1,E2]
//!   [--eps R1:R2,...] [--runs N] [--seed S] [--chunk N]
//!   [--timeout-ms T] [--no-wait]` — submit a sharded sweep to a
//!   coordinator and stream its progress events.
//! * `prop upload <file> [--id ID] [--addr A] [--by-path]` — store a
//!   netlist in the daemon's circuit store for submit-by-id sweeps.
//! * `prop ctl <ping|stats|shutdown|status|wait|cancel|watch|circuits|
//!   evict> [--addr A] [--job N] [--circuit ID]` — control-plane
//!   requests against a running daemon (`watch` streams a batch's
//!   events).
//!
//! The library half exists so the argument handling and command logic are
//! unit-testable; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prop_core::{
    partition_kway, BalanceConstraint, GlobalPartitioner, KwayConfig, KwayPartition,
    ParallelPolicy, Partitioner, Prop, PropConfig, RunResult, Side,
};
use prop_fm::{FmBucket, FmTree, Kl, La, SimulatedAnnealing};
use prop_multilevel::{Multilevel, MultilevelConfig};
use prop_netlist::{format, generate, hgb, suite, Hypergraph};
use prop_serve::{BatchRequest, Client, ConnectRetry, Json, SubmitRequest, UploadRequest};
use prop_spectral::{Eig1, MeloStyle, ParaboliStyle, WindowStyle};
use std::fmt;
use std::path::Path;

/// A CLI failure: message plus exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime failure).
    pub code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn usage(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 2,
    }
}

fn failure(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

/// Parsed command line.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// `prop stats <file>`
    Stats {
        /// Netlist path.
        file: String,
    },
    /// `prop generate ...`
    Generate {
        /// Explicit sizes, or a named Table-1 circuit.
        source: GenerateSource,
        /// Seed for the explicit-size form.
        seed: u64,
        /// Output path (stdout if `None`); extension selects the format.
        out: Option<String>,
    },
    /// `prop convert <in> <out>`
    Convert {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
    },
    /// `prop partition <file> ...`
    Partition {
        /// Netlist path.
        file: String,
        /// Method name.
        method: String,
        /// Balance ratios.
        r1: f64,
        /// Balance ratios.
        r2: f64,
        /// Runs for iterative methods.
        runs: usize,
        /// Base seed.
        seed: u64,
        /// Worker threads for iterative methods: `None` sequential,
        /// `Some(0)` auto-detect, `Some(n)` exactly `n`. The result is
        /// bit-identical for every setting.
        threads: Option<usize>,
        /// Optional path for the node→side assignment output.
        assign: Option<String>,
        /// Multilevel knobs (`--ml-*`, used by the `ml` method; the
        /// engine seed comes from `seed`).
        ml: MultilevelConfig,
        /// Number of parts; `2` (the default) runs the classic
        /// bipartition path, anything else the recursive k-way driver.
        k: usize,
        /// Per-part area budgets (`--budgets`); routes through the k-way
        /// driver even at `k = 2`.
        budgets: Option<Vec<f64>>,
    },
    /// `prop serve ...`
    Serve {
        /// Listen address.
        addr: String,
        /// Worker pool size (0 = auto-detect).
        workers: usize,
        /// Job-queue admission capacity.
        queue_cap: usize,
        /// Directory of the daemon's named-circuit store.
        store_dir: String,
        /// Coordinator mode: comma-separated worker daemon addresses to
        /// shard `batch` sweeps across (`None` = plain daemon).
        coordinator: Option<Vec<String>>,
        /// Worker heartbeat interval in milliseconds (coordinator mode).
        heartbeat_ms: u64,
        /// Bounded per-sub-job retries before a batch fails
        /// (coordinator mode).
        retries: u32,
    },
    /// `prop submit (<file> | --circuit-id ID) ...`
    Submit {
        /// Netlist path (extension selects the wire format), or `None`
        /// when the job references a stored circuit.
        file: Option<String>,
        /// Stored circuit to run against instead of an inline payload.
        circuit_id: Option<String>,
        /// Daemon address.
        addr: String,
        /// Engine name (`prop`, `prop-paper`, `fm`, `fm-tree`, `ml`).
        engine: String,
        /// Multi-start runs.
        runs: usize,
        /// Base seed.
        seed: u64,
        /// Balance ratios.
        r1: f64,
        /// Balance ratios.
        r2: f64,
        /// Job deadline in milliseconds (0 = none).
        timeout_ms: u64,
        /// Scheduling priority (0–3, higher first).
        priority: u8,
        /// When `false`, block until the job is terminal.
        no_wait: bool,
        /// Multilevel knobs (`--ml-*`, forwarded on the wire for the
        /// `ml` engine).
        ml: MultilevelConfig,
        /// Number of parts (`--k`, default 2 = classic bipartition).
        k: usize,
        /// Per-part area budgets (`--budgets`), forwarded on the wire.
        budgets: Option<Vec<f64>>,
    },
    /// `prop batch --circuit-id ID ...`
    Batch {
        /// Stored circuit the sweep runs against.
        circuit_id: String,
        /// Coordinator address.
        addr: String,
        /// Engines dimension of the sweep.
        engines: Vec<String>,
        /// Balance (ε) dimension: `(r1, r2)` pairs.
        eps: Vec<(f64, f64)>,
        /// Multi-start runs per (engine, ε) group.
        runs: usize,
        /// Base seed.
        seed: u64,
        /// Consecutive runs per sub-job (the sharding grain).
        chunk: usize,
        /// Per-sub-job deadline in milliseconds (0 = none).
        timeout_ms: u64,
        /// When `false`, stream `watch` events until the terminal
        /// `done` line.
        no_wait: bool,
    },
    /// `prop upload <file> ...`
    Upload {
        /// Netlist path (`.hgr`, `.netd`, or `.hgb`).
        file: String,
        /// Circuit id to store under (default: the file stem).
        id: Option<String>,
        /// Daemon address.
        addr: String,
        /// Send the (daemon-local) file path instead of the inline bytes
        /// — the route for circuits larger than the request cap.
        by_path: bool,
    },
    /// `prop ctl <verb> ...`
    Ctl {
        /// Control verb: `ping`, `stats`, `shutdown`, `status`, `wait`,
        /// `cancel`, `watch`, `circuits`, or `evict`.
        verb: String,
        /// Daemon address.
        addr: String,
        /// Job id for `status`/`wait`/`cancel`/`watch`.
        job: Option<u64>,
        /// Circuit id for `evict`.
        circuit: Option<String>,
    },
    /// `prop help`
    Help,
}

/// The default daemon address for `serve`, `submit`, and `ctl`.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7077";

/// What `prop generate` generates.
#[derive(Clone, PartialEq, Debug)]
pub enum GenerateSource {
    /// Explicit node/net/pin counts.
    Sizes {
        /// Node count.
        nodes: usize,
        /// Net count.
        nets: usize,
        /// Exact pin count.
        pins: usize,
    },
    /// A named Table-1 proxy circuit.
    Circuit(String),
}

/// The usage text printed by `prop help` and on argument errors.
pub const USAGE: &str = "\
prop — PROP probabilistic min-cut partitioning suite (DAC-96 reproduction)

USAGE:
  prop stats <file>
  prop generate (--circuit <name> | --nodes N --nets E --pins P) [--seed S] [--out FILE]
  prop convert <in> <out>
  prop partition <file> [--method M] [--r1 X] [--r2 Y] [--runs N] [--seed S]
                 [--threads N] [--assign FILE] [--ml-* N]
                 [--k K] [--budgets A1,A2,...]
  prop serve [--addr A] [--workers N] [--queue-cap N] [--store-dir D]
             [--coordinator W1,W2,...] [--heartbeat-ms N] [--retries N]
  prop submit (<file> | --circuit-id ID) [--addr A] [--engine E] [--runs N]
              [--seed S] [--r1 X] [--r2 Y] [--timeout-ms T] [--priority P]
              [--no-wait] [--ml-* N] [--k K] [--budgets A1,A2,...]
  prop batch --circuit-id ID [--addr A] [--engines E1,E2] [--eps R1:R2,...]
             [--runs N] [--seed S] [--chunk N] [--timeout-ms T] [--no-wait]
  prop upload <file> [--id ID] [--addr A] [--by-path]
  prop ctl <ping|stats|shutdown|status|wait|cancel|watch|circuits|evict>
           [--addr A] [--job N] [--circuit ID]
  prop help

Formats are chosen by extension: .hgr (hMETIS), .netd (named), or .hgb
(the zero-copy binary snapshot; stats/partition load it via mmap, and
convert to .hgb writes the canonical snapshot).
upload stores a netlist in the daemon's circuit store (--by-path sends a
daemon-local file path instead of the bytes — the route past the request
cap); submit --circuit-id then sweeps seeds/engines against the stored
circuit without re-sending it.
Partition methods: prop (default), prop-paper, fm, fm-tree, la2, la3, kl,
sa, eig1, melo, paraboli, window, ml.
--k K partitions into K parts by recursive bisection (iterative methods
and ml only); --budgets A1,...,AK caps each part's node weight by an
absolute area (multi-FPGA style, k-way driver even at K=2). The k-way
result line reports both objectives (hyperedge cut and connectivity
lambda-1), per-part sizes and weights; --assign then writes node->part
numbers. submit forwards --k/--budgets on the wire; infeasible budgets
fail the job with a typed message.
--threads fans the runs of iterative methods over N worker threads
(0 = auto-detect); the result is bit-identical to the sequential run.
For --method ml, --threads instead parallelizes *inside* each V-cycle
(deterministic coarsening + synchronous-round refinement; the result is
bit-identical at every thread count, but differs from the sequential
engine, which uses the classic algorithms).
The ml method takes --ml-coarsest, --ml-starts, --ml-max-net,
--ml-refine-passes, --ml-polish, and --ml-threads V-cycle knobs
(partition and submit; --ml-threads N = intra-run workers, 0 = classic
sequential engine). --ml-flow adds flow-based corridor refinement after
each level's move passes; --ml-flow-corridor N caps the corridor at N
nodes per side (implies --ml-flow; default 3000).
serve/submit/ctl default to 127.0.0.1:7077; submit prints the daemon's
one-line JSON response and exits nonzero if the job did not complete.
serve --coordinator W1,W2,... additionally shards `batch` sweeps across
the listed worker daemons, with heartbeat health checks (--heartbeat-ms)
and bounded retry-on-loss (--retries); batch expands a stored circuit
into a seeds x engines x eps sweep, streams per-sub-job progress lines,
and prints a final merged result bit-identical to the same sweep run
sequentially. ctl watch --job N re-streams a batch's event log.";

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// Returns a usage-level [`CliError`] for unknown commands, flags, or
/// malformed values.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "stats" => {
            let [file] = rest.as_slice() else {
                return Err(usage("stats takes exactly one file argument"));
            };
            Ok(Command::Stats {
                file: (*file).clone(),
            })
        }
        "convert" => {
            let [input, output] = rest.as_slice() else {
                return Err(usage("convert takes exactly <in> <out>"));
            };
            Ok(Command::Convert {
                input: (*input).clone(),
                output: (*output).clone(),
            })
        }
        "generate" => parse_generate(&rest),
        "partition" => parse_partition(&rest),
        "serve" => parse_serve(&rest),
        "submit" => parse_submit(&rest),
        "batch" => parse_batch(&rest),
        "upload" => parse_upload(&rest),
        "ctl" => parse_ctl(&rest),
        other => Err(usage(format!("unknown command {other:?}"))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, &'a String>,
) -> Result<&'a str, CliError> {
    it.next()
        .map(|s| s.as_str())
        .ok_or_else(|| usage(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| usage(format!("bad value {value:?} for {flag}")))
}

/// Consumes one `--ml-*` knob flag if `arg` is one, returning whether it
/// was. Shared by `partition` and `submit`.
fn parse_ml_flag<'a>(
    arg: &str,
    it: &mut std::slice::Iter<'a, &'a String>,
    ml: &mut MultilevelConfig,
) -> Result<bool, CliError> {
    match arg {
        "--ml-coarsest" => ml.coarsest_nodes = parse_num(arg, take_value(arg, it)?)?,
        "--ml-starts" => ml.coarsest_starts = parse_num(arg, take_value(arg, it)?)?,
        "--ml-max-net" => ml.max_match_net = parse_num(arg, take_value(arg, it)?)?,
        "--ml-refine-passes" => ml.refine_passes = parse_num(arg, take_value(arg, it)?)?,
        "--ml-polish" => ml.polish_passes = parse_num(arg, take_value(arg, it)?)?,
        "--ml-threads" => {
            ml.intra = match parse_num::<usize>(arg, take_value(arg, it)?)? {
                0 => ParallelPolicy::Sequential,
                n => ParallelPolicy::Threads(n),
            }
        }
        "--ml-flow" => ml.flow.enabled = true,
        "--ml-flow-corridor" => {
            ml.flow.enabled = true;
            ml.flow.corridor_nodes = parse_num(arg, take_value(arg, it)?)?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_generate(rest: &[&String]) -> Result<Command, CliError> {
    let mut nodes = None;
    let mut nets = None;
    let mut pins = None;
    let mut circuit = None;
    let mut seed = 0u64;
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => nodes = Some(parse_num("--nodes", take_value("--nodes", &mut it)?)?),
            "--nets" => nets = Some(parse_num("--nets", take_value("--nets", &mut it)?)?),
            "--pins" => pins = Some(parse_num("--pins", take_value("--pins", &mut it)?)?),
            "--seed" => seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
            "--circuit" => circuit = Some(take_value("--circuit", &mut it)?.to_string()),
            "--out" => out = Some(take_value("--out", &mut it)?.to_string()),
            other => return Err(usage(format!("unknown generate flag {other:?}"))),
        }
    }
    let source = match (circuit, nodes, nets, pins) {
        (Some(name), None, None, None) => GenerateSource::Circuit(name),
        (None, Some(nodes), Some(nets), Some(pins)) => GenerateSource::Sizes { nodes, nets, pins },
        _ => {
            return Err(usage(
                "generate needs either --circuit <name> or all of --nodes/--nets/--pins",
            ))
        }
    };
    Ok(Command::Generate { source, seed, out })
}

fn parse_partition(rest: &[&String]) -> Result<Command, CliError> {
    let mut it = rest.iter();
    let Some(file) = it.next() else {
        return Err(usage("partition needs a netlist file"));
    };
    let mut method = "prop".to_string();
    let mut r1 = 0.45;
    let mut r2 = 0.55;
    let mut runs = 20usize;
    let mut seed = 0u64;
    let mut threads = None;
    let mut assign = None;
    let mut ml = MultilevelConfig::default();
    let mut k = 2usize;
    let mut budgets = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--method" => method = take_value("--method", &mut it)?.to_string(),
            "--r1" => r1 = parse_num("--r1", take_value("--r1", &mut it)?)?,
            "--r2" => r2 = parse_num("--r2", take_value("--r2", &mut it)?)?,
            "--runs" => runs = parse_num("--runs", take_value("--runs", &mut it)?)?,
            "--seed" => seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
            "--threads" => {
                threads = Some(parse_num("--threads", take_value("--threads", &mut it)?)?)
            }
            "--assign" => assign = Some(take_value("--assign", &mut it)?.to_string()),
            "--k" => k = parse_num("--k", take_value("--k", &mut it)?)?,
            "--budgets" => budgets = Some(parse_budgets(take_value("--budgets", &mut it)?)?),
            other => {
                if !parse_ml_flag(other, &mut it, &mut ml)? {
                    return Err(usage(format!("unknown partition flag {other:?}")));
                }
            }
        }
    }
    validate_kway_flags(k, budgets.as_deref())?;
    Ok(Command::Partition {
        file: (*file).clone(),
        method,
        r1,
        r2,
        runs,
        seed,
        threads,
        assign,
        ml,
        k,
        budgets,
    })
}

/// Parses a `--budgets` comma-separated area list.
fn parse_budgets(value: &str) -> Result<Vec<f64>, CliError> {
    let budgets = value
        .split(',')
        .map(|b| parse_num("--budgets", b.trim()))
        .collect::<Result<Vec<f64>, CliError>>()?;
    if budgets.is_empty() {
        return Err(usage("--budgets needs a comma-separated list of areas"));
    }
    Ok(budgets)
}

/// Shared `--k` / `--budgets` validation for partition and submit.
fn validate_kway_flags(k: usize, budgets: Option<&[f64]>) -> Result<(), CliError> {
    if k < 2 {
        return Err(usage("--k must be at least 2"));
    }
    if let Some(budgets) = budgets {
        if budgets.len() != k {
            return Err(usage(format!(
                "--budgets lists {} areas for --k {k} parts",
                budgets.len()
            )));
        }
        if budgets.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err(usage("--budgets areas must be finite and positive"));
        }
    }
    Ok(())
}

/// The default circuit-store directory for `prop serve`.
pub const DEFAULT_STORE_DIR: &str = "prop-store";

fn parse_serve(rest: &[&String]) -> Result<Command, CliError> {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut workers = 0usize;
    let mut queue_cap = 64usize;
    let mut store_dir = DEFAULT_STORE_DIR.to_string();
    let mut coordinator = None;
    let mut heartbeat_ms = 500u64;
    let mut retries = 3u32;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
            "--workers" => workers = parse_num("--workers", take_value("--workers", &mut it)?)?,
            "--queue-cap" => {
                queue_cap = parse_num("--queue-cap", take_value("--queue-cap", &mut it)?)?
            }
            "--store-dir" => store_dir = take_value("--store-dir", &mut it)?.to_string(),
            "--coordinator" => {
                let list: Vec<String> = take_value("--coordinator", &mut it)?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if list.is_empty() {
                    return Err(usage(
                        "--coordinator needs a comma-separated worker address list",
                    ));
                }
                coordinator = Some(list);
            }
            "--heartbeat-ms" => {
                heartbeat_ms =
                    parse_num("--heartbeat-ms", take_value("--heartbeat-ms", &mut it)?)?
            }
            "--retries" => retries = parse_num("--retries", take_value("--retries", &mut it)?)?,
            other => return Err(usage(format!("unknown serve flag {other:?}"))),
        }
    }
    if queue_cap == 0 {
        return Err(usage("--queue-cap must be at least 1"));
    }
    if heartbeat_ms == 0 {
        return Err(usage("--heartbeat-ms must be at least 1"));
    }
    Ok(Command::Serve {
        addr,
        workers,
        queue_cap,
        store_dir,
        coordinator,
        heartbeat_ms,
        retries,
    })
}

fn parse_batch(rest: &[&String]) -> Result<Command, CliError> {
    let mut circuit_id = None;
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut engines = vec!["prop".to_string()];
    let mut eps = vec![(0.45, 0.55)];
    let mut runs = 20usize;
    let mut seed = 0u64;
    let mut chunk = 1usize;
    let mut timeout_ms = 0u64;
    let mut no_wait = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuit-id" => {
                circuit_id = Some(take_value("--circuit-id", &mut it)?.to_string())
            }
            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
            "--engines" => {
                engines = take_value("--engines", &mut it)?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if engines.is_empty() {
                    return Err(usage("--engines needs a comma-separated engine list"));
                }
            }
            "--eps" => {
                eps = take_value("--eps", &mut it)?
                    .split(',')
                    .map(|pair| {
                        let (r1, r2) = pair
                            .split_once(':')
                            .ok_or_else(|| usage(format!("bad --eps pair {pair:?} (use R1:R2)")))?;
                        Ok((parse_num("--eps", r1.trim())?, parse_num("--eps", r2.trim())?))
                    })
                    .collect::<Result<Vec<(f64, f64)>, CliError>>()?;
                if eps.is_empty() {
                    return Err(usage("--eps needs a comma-separated R1:R2 list"));
                }
            }
            "--runs" => runs = parse_num("--runs", take_value("--runs", &mut it)?)?,
            "--seed" => seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
            "--chunk" => chunk = parse_num("--chunk", take_value("--chunk", &mut it)?)?,
            "--timeout-ms" => {
                timeout_ms = parse_num("--timeout-ms", take_value("--timeout-ms", &mut it)?)?
            }
            "--no-wait" => no_wait = true,
            other => return Err(usage(format!("unknown batch flag {other:?}"))),
        }
    }
    let Some(circuit_id) = circuit_id else {
        return Err(usage("batch needs --circuit-id <id> (upload the circuit first)"));
    };
    Ok(Command::Batch {
        circuit_id,
        addr,
        engines,
        eps,
        runs,
        seed,
        chunk,
        timeout_ms,
        no_wait,
    })
}

fn parse_submit(rest: &[&String]) -> Result<Command, CliError> {
    let mut it = rest.iter();
    let mut file = None;
    let mut circuit_id = None;
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut engine = "prop".to_string();
    let mut runs = 20usize;
    let mut seed = 0u64;
    let mut r1 = 0.45;
    let mut r2 = 0.55;
    let mut timeout_ms = 0u64;
    let mut priority = 0u8;
    let mut no_wait = false;
    let mut ml = MultilevelConfig::default();
    let mut k = 2usize;
    let mut budgets = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
            "--engine" => engine = take_value("--engine", &mut it)?.to_string(),
            "--k" => k = parse_num("--k", take_value("--k", &mut it)?)?,
            "--budgets" => budgets = Some(parse_budgets(take_value("--budgets", &mut it)?)?),
            "--runs" => runs = parse_num("--runs", take_value("--runs", &mut it)?)?,
            "--seed" => seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
            "--r1" => r1 = parse_num("--r1", take_value("--r1", &mut it)?)?,
            "--r2" => r2 = parse_num("--r2", take_value("--r2", &mut it)?)?,
            "--timeout-ms" => {
                timeout_ms = parse_num("--timeout-ms", take_value("--timeout-ms", &mut it)?)?
            }
            "--priority" => {
                priority = parse_num("--priority", take_value("--priority", &mut it)?)?
            }
            "--no-wait" => no_wait = true,
            "--circuit-id" => {
                circuit_id = Some(take_value("--circuit-id", &mut it)?.to_string())
            }
            other => {
                if parse_ml_flag(other, &mut it, &mut ml)? {
                    continue;
                }
                if !other.starts_with('-') && file.is_none() {
                    file = Some(other.to_string());
                } else {
                    return Err(usage(format!("unknown submit flag {other:?}")));
                }
            }
        }
    }
    match (&file, &circuit_id) {
        (None, None) => {
            return Err(usage("submit needs a netlist file or --circuit-id <id>"))
        }
        (Some(_), Some(_)) => {
            return Err(usage("submit takes either a netlist file or --circuit-id, not both"))
        }
        _ => {}
    }
    validate_kway_flags(k, budgets.as_deref())?;
    Ok(Command::Submit {
        file,
        circuit_id,
        addr,
        engine,
        runs,
        seed,
        r1,
        r2,
        timeout_ms,
        priority,
        no_wait,
        ml,
        k,
        budgets,
    })
}

fn parse_upload(rest: &[&String]) -> Result<Command, CliError> {
    let mut it = rest.iter();
    let mut file = None;
    let mut id = None;
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut by_path = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--id" => id = Some(take_value("--id", &mut it)?.to_string()),
            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
            "--by-path" => by_path = true,
            other => {
                if !other.starts_with('-') && file.is_none() {
                    file = Some(other.to_string());
                } else {
                    return Err(usage(format!("unknown upload flag {other:?}")));
                }
            }
        }
    }
    let Some(file) = file else {
        return Err(usage("upload needs a netlist file"));
    };
    Ok(Command::Upload {
        file,
        id,
        addr,
        by_path,
    })
}

fn parse_ctl(rest: &[&String]) -> Result<Command, CliError> {
    let mut it = rest.iter();
    let Some(verb) = it.next() else {
        return Err(usage(
            "ctl needs a verb: ping, stats, shutdown, status, wait, cancel, watch, circuits, evict",
        ));
    };
    let verb = verb.as_str();
    if !["ping", "stats", "shutdown", "status", "wait", "cancel", "watch", "circuits", "evict"]
        .contains(&verb)
    {
        return Err(usage(format!("unknown ctl verb {verb:?}")));
    }
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut job = None;
    let mut circuit = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
            "--job" => job = Some(parse_num("--job", take_value("--job", &mut it)?)?),
            "--circuit" => circuit = Some(take_value("--circuit", &mut it)?.to_string()),
            other => return Err(usage(format!("unknown ctl flag {other:?}"))),
        }
    }
    let needs_job = ["status", "wait", "cancel", "watch"].contains(&verb);
    if needs_job && job.is_none() {
        return Err(usage(format!("ctl {verb} needs --job <id>")));
    }
    if !needs_job && job.is_some() {
        return Err(usage(format!("ctl {verb} takes no --job")));
    }
    if verb == "evict" && circuit.is_none() {
        return Err(usage("ctl evict needs --circuit <id>"));
    }
    if verb != "evict" && circuit.is_some() {
        return Err(usage(format!("ctl {verb} takes no --circuit")));
    }
    Ok(Command::Ctl {
        verb: verb.to_string(),
        addr,
        job,
        circuit,
    })
}

/// Loads a netlist, choosing the parser by file extension. `.hgb`
/// snapshots go through the zero-copy loader and also return its load
/// report (backing mode, bytes, elapsed milliseconds).
///
/// # Errors
///
/// Fails on I/O errors, unknown extensions, and parse errors.
pub fn load_netlist_reported(
    path: &str,
) -> Result<(Hypergraph, Option<hgb::LoadReport>), CliError> {
    if extension(path) == "hgb" {
        let (graph, report) =
            hgb::load_hgb(Path::new(path)).map_err(|e| failure(format!("{path}: {e}")))?;
        return Ok((graph, Some(report)));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| failure(format!("cannot read {path}: {e}")))?;
    let graph = match extension(path) {
        "hgr" => format::parse_hgr(&text).map_err(|e| failure(format!("{path}: {e}")))?,
        "netd" => format::parse_netd(&text).map_err(|e| failure(format!("{path}: {e}")))?,
        other => {
            return Err(usage(format!(
                "unknown netlist extension {other:?} (use .hgr, .netd, or .hgb)"
            )))
        }
    };
    Ok((graph, None))
}

/// Loads a netlist, choosing the parser by file extension.
///
/// # Errors
///
/// Fails on I/O errors, unknown extensions, and parse errors.
pub fn load_netlist(path: &str) -> Result<Hypergraph, CliError> {
    load_netlist_reported(path).map(|(graph, _)| graph)
}

/// Serialises a netlist to text, choosing the writer by file extension
/// (the binary `.hgb` goes through [`write_netlist`] instead).
///
/// # Errors
///
/// Fails on unknown extensions.
pub fn render_netlist(graph: &Hypergraph, path: &str) -> Result<String, CliError> {
    match extension(path) {
        "hgr" => Ok(format::write_hgr(graph)),
        "netd" => Ok(format::write_netd(graph)),
        other => Err(usage(format!(
            "unknown netlist extension {other:?} (use .hgr or .netd)"
        ))),
    }
}

/// Writes a netlist to `path`, choosing the writer by file extension:
/// `.hgb` is the canonical binary snapshot, the rest are the text
/// formats.
///
/// # Errors
///
/// Fails on unknown extensions and write errors.
pub fn write_netlist(graph: &Hypergraph, path: &str) -> Result<(), CliError> {
    if extension(path) == "hgb" {
        return hgb::write_hgb_file(graph, Path::new(path))
            .map_err(|e| failure(format!("cannot write {path}: {e}")));
    }
    let text = render_netlist(graph, path)?;
    std::fs::write(path, text).map_err(|e| failure(format!("cannot write {path}: {e}")))
}

/// Dials a daemon with the CLI's default bounded-retry policy, mapping
/// exhaustion to the typed `connect_failed` message instead of a raw
/// socket error.
fn connect_daemon(addr: &str) -> Result<Client, CliError> {
    Client::connect_retry(addr, &ConnectRetry::default()).map_err(|e| failure(e.to_string()))
}

fn extension(path: &str) -> &str {
    Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
}

/// Maps the `--threads` setting to a parallelism policy.
pub fn thread_policy(threads: Option<usize>) -> ParallelPolicy {
    match threads {
        None => ParallelPolicy::Sequential,
        Some(0) => ParallelPolicy::Auto,
        Some(n) => ParallelPolicy::Threads(n),
    }
}

/// Runs the named method on a graph with the default multilevel knobs;
/// see [`run_method_ml`].
///
/// # Errors
///
/// Fails on unknown method names or partitioner errors.
pub fn run_method(
    method: &str,
    graph: &Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    seed: u64,
    policy: ParallelPolicy,
) -> Result<RunResult, CliError> {
    run_method_ml(method, graph, balance, runs, seed, policy, MultilevelConfig::default())
}

/// Runs the named method on a graph. Iterative methods fan their runs
/// out according to `policy`; global (one-shot) methods ignore it. For
/// `ml` the policy instead parallelizes *inside* each V-cycle
/// (deterministic coarsening + synchronous-round refinement, bit-identical
/// at every thread count) and the runs themselves stay sequential, so the
/// multi-start seed stream order is fixed.
///
/// # Errors
///
/// Fails on unknown method names or partitioner errors.
pub fn run_method_ml(
    method: &str,
    graph: &Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    seed: u64,
    policy: ParallelPolicy,
    ml: MultilevelConfig,
) -> Result<RunResult, CliError> {
    if method == "ml" {
        // --threads routes to the intra-run policy; an explicit
        // --ml-threads (already in `ml.intra`) wins when --threads is
        // absent.
        let intra = if matches!(policy, ParallelPolicy::Sequential) {
            ml.intra
        } else {
            policy
        };
        let engine = Multilevel::standard(MultilevelConfig { seed, intra, ..ml });
        return engine
            .run_multi_parallel(graph, balance, runs, seed, ParallelPolicy::Sequential)
            .map_err(|e| failure(e.to_string()));
    }
    let iterative: Option<Box<dyn Partitioner>> = match method {
        "prop" => Some(Box::new(Prop::new(PropConfig::calibrated()))),
        "prop-paper" => Some(Box::new(Prop::new(PropConfig::default()))),
        "fm" => Some(Box::new(FmBucket::default())),
        "fm-tree" => Some(Box::new(FmTree::default())),
        "la2" => Some(Box::new(La::new(2))),
        "la3" => Some(Box::new(La::new(3))),
        "kl" => Some(Box::new(Kl::default())),
        "sa" => Some(Box::new(SimulatedAnnealing::default())),
        _ => None,
    };
    if let Some(p) = iterative {
        return p
            .run_multi_parallel(graph, balance, runs, seed, policy)
            .map_err(|e| failure(e.to_string()));
    }
    let global: Box<dyn GlobalPartitioner> = match method {
        "eig1" => Box::new(Eig1::default()),
        "melo" => Box::new(MeloStyle::default()),
        "paraboli" => Box::new(ParaboliStyle::default()),
        "window" => Box::new(WindowStyle { runs, seed }),
        other => return Err(usage(format!("unknown method {other:?}"))),
    };
    global
        .partition(graph, balance)
        .map_err(|e| failure(e.to_string()))
}

/// Builds the 2-way engine the recursive k-way driver recurses with,
/// mirroring [`run_method_ml`]'s dispatch; one-shot global methods have
/// no `improve` step to recurse with and are rejected. Returns the
/// engine and the run-harness policy: `ml` routes `--threads` to the
/// intra-run workers and keeps the runs sequential, exactly like the
/// 2-way path.
fn kway_engine(
    method: &str,
    seed: u64,
    policy: ParallelPolicy,
    ml: MultilevelConfig,
) -> Result<(Box<dyn Partitioner>, ParallelPolicy), CliError> {
    if method == "ml" {
        let intra = if matches!(policy, ParallelPolicy::Sequential) {
            ml.intra
        } else {
            policy
        };
        let engine = Multilevel::standard(MultilevelConfig { seed, intra, ..ml });
        return Ok((Box::new(engine), ParallelPolicy::Sequential));
    }
    let engine: Box<dyn Partitioner> = match method {
        "prop" => Box::new(Prop::new(PropConfig::calibrated())),
        "prop-paper" => Box::new(Prop::new(PropConfig::default())),
        "fm" => Box::new(FmBucket::default()),
        "fm-tree" => Box::new(FmTree::default()),
        "la2" => Box::new(La::new(2)),
        "la3" => Box::new(La::new(3)),
        "kl" => Box::new(Kl::default()),
        "sa" => Box::new(SimulatedAnnealing::default()),
        other => {
            return Err(usage(format!(
                "method {other:?} cannot drive k-way recursion (use an iterative method)"
            )))
        }
    };
    Ok((engine, policy))
}

/// Runs the recursive k-way driver for `prop partition --k/--budgets`
/// and prints the result line.
///
/// # Errors
///
/// Fails on non-iterative methods, infeasible budgets, and partitioner
/// errors.
#[allow(clippy::too_many_arguments)]
pub fn run_kway(
    method: &str,
    graph: &Hypergraph,
    k: usize,
    budgets: Option<Vec<f64>>,
    r1: f64,
    r2: f64,
    runs: usize,
    seed: u64,
    threads: Option<usize>,
    ml: MultilevelConfig,
) -> Result<KwayPartition, CliError> {
    let (engine, policy) = kway_engine(method, seed, thread_policy(threads), ml)?;
    let config = KwayConfig {
        k,
        budgets,
        runs,
        seed,
        r1,
        r2,
        policy,
    };
    let report =
        partition_kway(graph, engine.as_ref(), &config).map_err(|e| failure(e.to_string()))?;
    let partition = report.partition;
    let sizes: Vec<String> = partition.block_sizes().iter().map(usize::to_string).collect();
    let weights: Vec<String> = partition.part_weights().iter().map(f64::to_string).collect();
    println!(
        "method={method} k={k} cut={} connectivity={} parts={} weights={} passes={}",
        partition.cut_cost(graph),
        partition.connectivity_cost(graph),
        sizes.join("/"),
        weights.join(","),
        report.total_passes
    );
    Ok(partition)
}

/// Renders the node→part assignment of a k-way partition (one
/// `<node-or-name> <part>` line per node).
pub fn render_kway_assignment(graph: &Hypergraph, partition: &KwayPartition) -> String {
    let mut out = String::new();
    for v in graph.nodes() {
        let name = graph
            .node_name(v)
            .map(str::to_owned)
            .unwrap_or_else(|| v.to_string());
        out.push_str(&format!("{name} {}\n", partition.block(v)));
    }
    out
}

/// Renders the node→side assignment (one `<node-or-name> <A|B>` line per
/// node).
pub fn render_assignment(graph: &Hypergraph, result: &RunResult) -> String {
    let mut out = String::new();
    for v in graph.nodes() {
        let name = graph
            .node_name(v)
            .map(str::to_owned)
            .unwrap_or_else(|| v.to_string());
        let side = match result.partition.side(v) {
            Side::A => 'A',
            Side::B => 'B',
        };
        out.push_str(&format!("{name} {side}\n"));
    }
    out
}

/// Executes a parsed command, writing human output via `println!`.
///
/// # Errors
///
/// Propagates usage and runtime failures for `main` to exit with.
pub fn run(command: Command) -> Result<(), CliError> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Stats { file } => {
            let (graph, report) = load_netlist_reported(&file)?;
            println!("{}", graph.stats());
            println!(
                "unit net costs: {}; unit node sizes: {}",
                graph.has_unit_weights(),
                graph.has_unit_node_weights()
            );
            if let Some(report) = report {
                println!(
                    "snapshot: {} bytes loaded via {} in {} ms",
                    report.bytes, report.mode, report.millis
                );
            }
            Ok(())
        }
        Command::Convert { input, output } => {
            let graph = load_netlist(&input)?;
            write_netlist(&graph, &output)?;
            println!("wrote {} ({})", output, graph.stats());
            Ok(())
        }
        Command::Generate { source, seed, out } => {
            let graph = match source {
                GenerateSource::Circuit(name) => suite::by_name(&name)
                    .ok_or_else(|| usage(format!("unknown circuit {name:?}")))?
                    .instantiate()
                    .map_err(|e| failure(e.to_string()))?,
                GenerateSource::Sizes { nodes, nets, pins } => generate::generate(
                    &generate::GeneratorConfig::new(nodes, nets, pins).with_seed(seed),
                )
                .map_err(|e| failure(e.to_string()))?,
            };
            match out {
                Some(path) => {
                    write_netlist(&graph, &path)?;
                    println!("wrote {} ({})", path, graph.stats());
                }
                None => print!("{}", format::write_hgr(&graph)),
            }
            Ok(())
        }
        Command::Partition {
            file,
            method,
            r1,
            r2,
            runs,
            seed,
            threads,
            assign,
            ml,
            k,
            budgets,
        } => {
            let graph = load_netlist(&file)?;
            if k != 2 || budgets.is_some() {
                let partition =
                    run_kway(&method, &graph, k, budgets, r1, r2, runs, seed, threads, ml)?;
                if let Some(path) = assign {
                    std::fs::write(&path, render_kway_assignment(&graph, &partition))
                        .map_err(|e| failure(format!("cannot write {path}: {e}")))?;
                    println!("assignment written to {path}");
                }
                return Ok(());
            }
            let balance = BalanceConstraint::weighted(r1, r2, &graph)
                .map_err(|e| usage(e.to_string()))?;
            let result =
                run_method_ml(&method, &graph, balance, runs, seed, thread_policy(threads), ml)?;
            println!(
                "method={method} cut={} sides={}A/{}B passes={}",
                result.cut_cost,
                result.partition.count(Side::A),
                result.partition.count(Side::B),
                result.total_passes
            );
            if let Some(path) = assign {
                std::fs::write(&path, render_assignment(&graph, &result))
                    .map_err(|e| failure(format!("cannot write {path}: {e}")))?;
                println!("assignment written to {path}");
            }
            Ok(())
        }
        Command::Serve {
            addr,
            workers,
            queue_cap,
            store_dir,
            coordinator,
            heartbeat_ms,
            retries,
        } => {
            let workers = if workers == 0 {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(2)
            } else {
                workers
            };
            let cluster = coordinator.map(|list| prop_serve::ClusterConfig {
                workers: list,
                heartbeat_ms,
                // Lost after 4 consecutive missed heartbeats.
                heartbeat_timeout_ms: heartbeat_ms.saturating_mul(4),
                max_retries: retries,
                ..prop_serve::ClusterConfig::default()
            });
            let cluster_note = cluster
                .as_ref()
                .map(|c| format!(", coordinating {} cluster workers", c.workers.len()))
                .unwrap_or_default();
            let config = prop_serve::ServerConfig {
                addr: addr.clone(),
                workers,
                queue_cap,
                store_dir: Some(store_dir.clone()),
                cluster,
                ..prop_serve::ServerConfig::default()
            };
            let handle = prop_serve::start(&config)
                .map_err(|e| failure(format!("cannot start on {addr}: {e}")))?;
            println!(
                "prop-serve listening on {} ({workers} workers, queue capacity {queue_cap}, \
                 store {store_dir}{cluster_note})",
                handle.addr()
            );
            handle.join();
            println!("prop-serve drained and stopped");
            Ok(())
        }
        Command::Submit {
            file,
            circuit_id,
            addr,
            engine,
            runs,
            seed,
            r1,
            r2,
            timeout_ms,
            priority,
            no_wait,
            ml,
            k,
            budgets,
        } => {
            let (fmt, payload) = match &file {
                Some(file) => {
                    let payload = std::fs::read_to_string(file)
                        .map_err(|e| failure(format!("cannot read {file}: {e}")))?;
                    let fmt = match extension(file) {
                        ext @ ("hgr" | "netd") => ext.to_string(),
                        other => {
                            return Err(usage(format!(
                                "unknown netlist extension {other:?} (use .hgr or .netd; \
                                 upload .hgb snapshots and submit --circuit-id instead)"
                            )))
                        }
                    };
                    (fmt, payload)
                }
                None => ("hgr".to_string(), String::new()),
            };
            let request = SubmitRequest {
                engine,
                runs,
                seed,
                r1,
                r2,
                timeout_ms,
                priority,
                fmt,
                payload,
                circuit_id: circuit_id.unwrap_or_default(),
                wait: !no_wait,
                ml_coarsest: ml.coarsest_nodes,
                ml_starts: ml.coarsest_starts,
                ml_max_net: ml.max_match_net,
                ml_refine_passes: ml.refine_passes,
                ml_polish: ml.polish_passes,
                ml_threads: match ml.intra {
                    ParallelPolicy::Threads(n) => n,
                    _ => 0,
                },
                ml_flow: u8::from(ml.flow.enabled),
                ml_flow_corridor: ml.flow.corridor_nodes,
                k,
                budgets: budgets.unwrap_or_default(),
            };
            let mut client = connect_daemon(&addr)?;
            let response = client.submit(&request).map_err(|e| failure(e.to_string()))?;
            println!("{}", response.render());
            let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
            let failed = response.get("status").and_then(Json::as_str) == Some("failed");
            if !ok || failed {
                return Err(failure("the daemon did not complete the job"));
            }
            Ok(())
        }
        Command::Batch {
            circuit_id,
            addr,
            engines,
            eps,
            runs,
            seed,
            chunk,
            timeout_ms,
            no_wait,
        } => {
            let spec = BatchRequest {
                circuit_id,
                engines,
                eps,
                runs,
                seed,
                chunk,
                timeout_ms,
            };
            let mut client = connect_daemon(&addr)?;
            let response = client.batch(&spec).map_err(|e| failure(e.to_string()))?;
            println!("{}", response.render());
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(failure("the coordinator rejected the batch"));
            }
            if no_wait {
                return Ok(());
            }
            let job = response
                .get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| failure("batch response carries no job id"))?;
            // Stream the event log: one JSON line per progress/result
            // event, ending with the terminal `done` line.
            let done = client
                .watch(job, |event| println!("{}", event.render()))
                .map_err(|e| failure(e.to_string()))?;
            let completed = done.get("ok").and_then(Json::as_bool) == Some(true)
                && done.get("status").and_then(Json::as_str) == Some("completed");
            if !completed {
                return Err(failure("the batch did not complete"));
            }
            Ok(())
        }
        Command::Upload {
            file,
            id,
            addr,
            by_path,
        } => {
            let fmt = match extension(&file) {
                ext @ ("hgr" | "netd" | "hgb") => ext.to_string(),
                other => {
                    return Err(usage(format!(
                        "unknown netlist extension {other:?} (use .hgr, .netd, or .hgb)"
                    )))
                }
            };
            let circuit = match id {
                Some(id) => id,
                None => Path::new(&file)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("")
                    .to_string(),
            };
            let request = if by_path {
                // The daemon reads the file itself, so the path must
                // resolve from the daemon's point of view; absolutise it
                // for the local-daemon case.
                let path = std::fs::canonicalize(&file)
                    .map_err(|e| failure(format!("cannot resolve {file}: {e}")))?;
                UploadRequest {
                    circuit,
                    fmt,
                    payload: None,
                    path: Some(path.to_string_lossy().into_owned()),
                }
            } else {
                let bytes = std::fs::read(&file)
                    .map_err(|e| failure(format!("cannot read {file}: {e}")))?;
                UploadRequest {
                    circuit,
                    fmt,
                    payload: Some(bytes),
                    path: None,
                }
            };
            let mut client = connect_daemon(&addr)?;
            let response = client.upload(&request).map_err(|e| failure(e.to_string()))?;
            println!("{}", response.render());
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(failure("the daemon rejected the upload"));
            }
            Ok(())
        }
        Command::Ctl {
            verb,
            addr,
            job,
            circuit,
        } => {
            let mut client = connect_daemon(&addr)?;
            if verb == "watch" {
                let done = client
                    .watch(job.expect("parser enforces --job"), |event| {
                        println!("{}", event.render());
                    })
                    .map_err(|e| failure(e.to_string()))?;
                if done.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Err(failure("ctl watch failed"));
                }
                return Ok(());
            }
            let response = match verb.as_str() {
                "ping" => client.ping(),
                "stats" => client.stats(),
                "shutdown" => client.shutdown(),
                "status" => client.status(job.expect("parser enforces --job")),
                "wait" => client.wait(job.expect("parser enforces --job")),
                "cancel" => client.cancel(job.expect("parser enforces --job")),
                "circuits" => client.circuits(),
                "evict" => client.evict(&circuit.expect("parser enforces --circuit")),
                other => return Err(usage(format!("unknown ctl verb {other:?}"))),
            }
            .map_err(|e| failure(e.to_string()))?;
            println!("{}", response.render());
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(failure(format!("ctl {verb} failed")));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_stats_and_convert() {
        assert_eq!(
            parse_args(&argv(&["stats", "a.hgr"])).unwrap(),
            Command::Stats { file: "a.hgr".into() }
        );
        assert!(parse_args(&argv(&["stats"])).is_err());
        assert_eq!(
            parse_args(&argv(&["convert", "a.hgr", "b.netd"])).unwrap(),
            Command::Convert {
                input: "a.hgr".into(),
                output: "b.netd".into()
            }
        );
    }

    #[test]
    fn parse_generate_variants() {
        let cmd = parse_args(&argv(&[
            "generate", "--nodes", "10", "--nets", "12", "--pins", "40", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                source: GenerateSource::Sizes {
                    nodes: 10,
                    nets: 12,
                    pins: 40
                },
                seed: 7,
                out: None,
            }
        );
        let cmd = parse_args(&argv(&["generate", "--circuit", "balu", "--out", "x.hgr"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Generate {
                source: GenerateSource::Circuit(ref n),
                ..
            } if n == "balu"
        ));
        // Mixing or missing selectors is an error.
        assert!(parse_args(&argv(&["generate", "--nodes", "10"])).is_err());
        assert!(parse_args(&argv(&[
            "generate", "--circuit", "balu", "--nodes", "10", "--nets", "2", "--pins", "5"
        ]))
        .is_err());
        assert!(parse_args(&argv(&["generate", "--nodes", "x"])).is_err());
    }

    #[test]
    fn parse_partition_defaults_and_flags() {
        let cmd = parse_args(&argv(&["partition", "c.hgr"])).unwrap();
        assert_eq!(
            cmd,
            Command::Partition {
                file: "c.hgr".into(),
                method: "prop".into(),
                r1: 0.45,
                r2: 0.55,
                runs: 20,
                seed: 0,
                threads: None,
                assign: None,
                ml: MultilevelConfig::default(),
                k: 2,
                budgets: None,
            }
        );
        let cmd = parse_args(&argv(&[
            "partition", "c.hgr", "--method", "fm", "--r1", "0.5", "--r2", "0.5", "--runs", "3",
            "--threads", "4", "--assign", "out.txt",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Partition { ref method, runs: 3, threads: Some(4), .. } if method == "fm"
        ));
        assert!(parse_args(&argv(&["partition", "c.hgr", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["partition", "c.hgr", "--threads", "x"])).is_err());
        assert!(parse_args(&argv(&["partition"])).is_err());
    }

    #[test]
    fn parse_kway_flags() {
        let cmd = parse_args(&argv(&["partition", "c.hgr", "--k", "4"])).unwrap();
        assert!(matches!(cmd, Command::Partition { k: 4, budgets: None, .. }));
        let cmd = parse_args(&argv(&[
            "partition", "c.hgr", "--k", "3", "--budgets", "120,60.5,40",
        ]))
        .unwrap();
        let Command::Partition { k, budgets, .. } = cmd else {
            panic!("expected partition")
        };
        assert_eq!(k, 3);
        assert_eq!(budgets, Some(vec![120.0, 60.5, 40.0]));
        // Budgets without --k imply arity 2 and engage the k-way driver.
        let cmd = parse_args(&argv(&["partition", "c.hgr", "--budgets", "90,60"])).unwrap();
        assert!(matches!(cmd, Command::Partition { k: 2, budgets: Some(_), .. }));
        // Validation: k >= 2, arity match, finite positive entries.
        assert!(parse_args(&argv(&["partition", "c.hgr", "--k", "1"])).is_err());
        assert!(parse_args(&argv(&["partition", "c.hgr", "--k", "3", "--budgets", "1,2"]))
            .is_err());
        assert!(parse_args(&argv(&["partition", "c.hgr", "--budgets", "1,-2"])).is_err());
        assert!(parse_args(&argv(&["partition", "c.hgr", "--budgets", "1,nan"])).is_err());
        assert!(parse_args(&argv(&["partition", "c.hgr", "--budgets", ""])).is_err());
        // Same flags ride the submit wire request.
        let cmd = parse_args(&argv(&[
            "submit", "c.hgr", "--engine", "ml", "--k", "4", "--budgets", "10,20,30,40",
        ]))
        .unwrap();
        let Command::Submit { k, budgets, .. } = cmd else {
            panic!("expected submit")
        };
        assert_eq!(k, 4);
        assert_eq!(budgets, Some(vec![10.0, 20.0, 30.0, 40.0]));
        assert!(parse_args(&argv(&["submit", "c.hgr", "--k", "0"])).is_err());
    }

    #[test]
    fn parse_ml_knob_flags() {
        let cmd = parse_args(&argv(&[
            "partition", "c.hgr", "--method", "ml", "--ml-coarsest", "64", "--ml-starts", "4",
            "--ml-max-net", "12", "--ml-refine-passes", "2", "--ml-polish", "0",
            "--ml-flow-corridor", "500",
        ]))
        .unwrap();
        let Command::Partition { ml, .. } = cmd else {
            panic!("expected partition")
        };
        assert_eq!(ml.coarsest_nodes, 64);
        assert_eq!(ml.coarsest_starts, 4);
        assert_eq!(ml.max_match_net, 12);
        assert_eq!(ml.refine_passes, 2);
        assert_eq!(ml.polish_passes, 0);
        assert!(ml.flow.enabled);
        assert_eq!(ml.flow.corridor_nodes, 500);
        // --ml-flow alone enables the pass at the default corridor size.
        let cmd = parse_args(&argv(&["partition", "c.hgr", "--method", "ml", "--ml-flow"]))
            .unwrap();
        let Command::Partition { ml, .. } = cmd else {
            panic!("expected partition")
        };
        assert!(ml.flow.enabled);
        assert_eq!(
            ml.flow.corridor_nodes,
            prop_multilevel::FlowConfig::default().corridor_nodes
        );
        // Same flags on submit, forwarded onto the wire request.
        let cmd = parse_args(&argv(&[
            "submit", "c.hgr", "--engine", "ml", "--ml-coarsest", "64",
        ]))
        .unwrap();
        let Command::Submit { ml, .. } = cmd else {
            panic!("expected submit")
        };
        assert_eq!(ml.coarsest_nodes, 64);
        assert!(parse_args(&argv(&["partition", "c.hgr", "--ml-coarsest", "x"])).is_err());
        assert!(parse_args(&argv(&["partition", "c.hgr", "--ml-coarsest"])).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        assert_eq!(
            parse_args(&argv(&["serve"])).unwrap(),
            Command::Serve {
                addr: DEFAULT_SERVE_ADDR.into(),
                workers: 0,
                queue_cap: 64,
                store_dir: DEFAULT_STORE_DIR.into(),
                coordinator: None,
                heartbeat_ms: 500,
                retries: 3,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "serve", "--addr", "127.0.0.1:0", "--workers", "3", "--queue-cap", "9",
                "--store-dir", "/tmp/circuits",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 3,
                queue_cap: 9,
                store_dir: "/tmp/circuits".into(),
                coordinator: None,
                heartbeat_ms: 500,
                retries: 3,
            }
        );
        assert!(parse_args(&argv(&["serve", "--queue-cap", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--bogus"])).is_err());
    }

    #[test]
    fn parse_serve_coordinator_flags() {
        let cmd = parse_args(&argv(&[
            "serve", "--coordinator", "127.0.0.1:7171, 127.0.0.1:7172", "--heartbeat-ms", "250",
            "--retries", "5",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                coordinator: Some(ref w),
                heartbeat_ms: 250,
                retries: 5,
                ..
            } if w == &vec!["127.0.0.1:7171".to_string(), "127.0.0.1:7172".to_string()]
        ));
        assert!(parse_args(&argv(&["serve", "--coordinator", ","])).is_err());
        assert!(parse_args(&argv(&["serve", "--coordinator"])).is_err());
        assert!(parse_args(&argv(&["serve", "--heartbeat-ms", "0"])).is_err());
    }

    #[test]
    fn parse_batch_defaults_and_flags() {
        assert_eq!(
            parse_args(&argv(&["batch", "--circuit-id", "golem3"])).unwrap(),
            Command::Batch {
                circuit_id: "golem3".into(),
                addr: DEFAULT_SERVE_ADDR.into(),
                engines: vec!["prop".into()],
                eps: vec![(0.45, 0.55)],
                runs: 20,
                seed: 0,
                chunk: 1,
                timeout_ms: 0,
                no_wait: false,
            }
        );
        let cmd = parse_args(&argv(&[
            "batch", "--circuit-id", "c", "--engines", "fm, prop", "--eps",
            "0.45:0.55,0.4:0.6", "--runs", "8", "--seed", "3", "--chunk", "2",
            "--timeout-ms", "100", "--no-wait",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                circuit_id: "c".into(),
                addr: DEFAULT_SERVE_ADDR.into(),
                engines: vec!["fm".into(), "prop".into()],
                eps: vec![(0.45, 0.55), (0.4, 0.6)],
                runs: 8,
                seed: 3,
                chunk: 2,
                timeout_ms: 100,
                no_wait: true,
            }
        );
        // --circuit-id is mandatory; malformed eps pairs are refused.
        assert!(parse_args(&argv(&["batch"])).is_err());
        assert!(parse_args(&argv(&["batch", "--circuit-id", "c", "--eps", "0.45"])).is_err());
        assert!(parse_args(&argv(&["batch", "--circuit-id", "c", "--eps", "a:b"])).is_err());
        assert!(parse_args(&argv(&["batch", "--circuit-id", "c", "--bogus"])).is_err());
    }

    #[test]
    fn parse_submit_defaults_and_flags() {
        let cmd = parse_args(&argv(&["submit", "c.hgr"])).unwrap();
        assert_eq!(
            cmd,
            Command::Submit {
                file: Some("c.hgr".into()),
                circuit_id: None,
                addr: DEFAULT_SERVE_ADDR.into(),
                engine: "prop".into(),
                runs: 20,
                seed: 0,
                r1: 0.45,
                r2: 0.55,
                timeout_ms: 0,
                priority: 0,
                no_wait: false,
                ml: MultilevelConfig::default(),
                k: 2,
                budgets: None,
            }
        );
        let cmd = parse_args(&argv(&[
            "submit", "c.hgr", "--engine", "ml", "--runs", "4", "--timeout-ms", "250",
            "--priority", "2", "--no-wait",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Submit {
                ref engine,
                runs: 4,
                timeout_ms: 250,
                priority: 2,
                no_wait: true,
                ..
            } if engine == "ml"
        ));
        assert!(parse_args(&argv(&["submit"])).is_err());
        assert!(parse_args(&argv(&["submit", "c.hgr", "--priority", "x"])).is_err());
    }

    #[test]
    fn parse_submit_by_circuit_id() {
        let cmd = parse_args(&argv(&["submit", "--circuit-id", "golem4", "--engine", "ml"]))
            .unwrap();
        assert!(matches!(
            cmd,
            Command::Submit {
                file: None,
                circuit_id: Some(ref id),
                ..
            } if id == "golem4"
        ));
        // Exactly one netlist source.
        assert!(parse_args(&argv(&["submit", "c.hgr", "--circuit-id", "x"])).is_err());
        assert!(parse_args(&argv(&["submit", "--engine", "ml"])).is_err());
        assert!(parse_args(&argv(&["submit", "a.hgr", "b.hgr"])).is_err());
    }

    #[test]
    fn parse_upload_variants() {
        assert_eq!(
            parse_args(&argv(&["upload", "golem4.hgb"])).unwrap(),
            Command::Upload {
                file: "golem4.hgb".into(),
                id: None,
                addr: DEFAULT_SERVE_ADDR.into(),
                by_path: false,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "upload", "big.hgr", "--id", "big-v2", "--addr", "127.0.0.1:9", "--by-path",
            ]))
            .unwrap(),
            Command::Upload {
                file: "big.hgr".into(),
                id: Some("big-v2".into()),
                addr: "127.0.0.1:9".into(),
                by_path: true,
            }
        );
        assert!(parse_args(&argv(&["upload"])).is_err());
        assert!(parse_args(&argv(&["upload", "a.hgr", "--bogus"])).is_err());
    }

    #[test]
    fn parse_ctl_verbs_and_job_requirements() {
        assert_eq!(
            parse_args(&argv(&["ctl", "stats"])).unwrap(),
            Command::Ctl {
                verb: "stats".into(),
                addr: DEFAULT_SERVE_ADDR.into(),
                job: None,
                circuit: None,
            }
        );
        assert_eq!(
            parse_args(&argv(&["ctl", "cancel", "--job", "7", "--addr", "127.0.0.1:9"])).unwrap(),
            Command::Ctl {
                verb: "cancel".into(),
                addr: "127.0.0.1:9".into(),
                job: Some(7),
                circuit: None,
            }
        );
        assert_eq!(
            parse_args(&argv(&["ctl", "circuits"])).unwrap(),
            Command::Ctl {
                verb: "circuits".into(),
                addr: DEFAULT_SERVE_ADDR.into(),
                job: None,
                circuit: None,
            }
        );
        assert_eq!(
            parse_args(&argv(&["ctl", "evict", "--circuit", "golem4"])).unwrap(),
            Command::Ctl {
                verb: "evict".into(),
                addr: DEFAULT_SERVE_ADDR.into(),
                job: None,
                circuit: Some("golem4".into()),
            }
        );
        // status/wait/cancel/watch need --job; the others refuse it.
        // evict needs --circuit; the others refuse it.
        assert!(parse_args(&argv(&["ctl", "wait"])).is_err());
        assert!(parse_args(&argv(&["ctl", "watch"])).is_err());
        assert!(matches!(
            parse_args(&argv(&["ctl", "watch", "--job", "4"])).unwrap(),
            Command::Ctl { ref verb, job: Some(4), .. } if verb == "watch"
        ));
        assert!(parse_args(&argv(&["ctl", "ping", "--job", "1"])).is_err());
        assert!(parse_args(&argv(&["ctl", "evict"])).is_err());
        assert!(parse_args(&argv(&["ctl", "ping", "--circuit", "x"])).is_err());
        assert!(parse_args(&argv(&["ctl", "reboot"])).is_err());
        assert!(parse_args(&argv(&["ctl"])).is_err());
    }

    #[test]
    fn submit_against_a_live_daemon_roundtrips() {
        let handle = prop_serve::start(&prop_serve::ServerConfig {
            workers: 1,
            queue_cap: 4,
            ..prop_serve::ServerConfig::default()
        })
        .unwrap();
        let dir = std::env::temp_dir().join(format!("prop-cli-submit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tiny.hgr");
        let g = prop_netlist::generate::generate(
            &prop_netlist::generate::GeneratorConfig::new(20, 24, 80).with_seed(6),
        )
        .unwrap();
        std::fs::write(&file, format::write_hgr(&g)).unwrap();

        let cmd = parse_args(&argv(&[
            "submit",
            file.to_str().unwrap(),
            "--addr",
            &handle.addr().to_string(),
            "--engine",
            "fm",
            "--runs",
            "2",
        ]))
        .unwrap();
        run(cmd).unwrap();

        let ctl = parse_args(&argv(&[
            "ctl",
            "shutdown",
            "--addr",
            &handle.addr().to_string(),
        ]))
        .unwrap();
        run(ctl).unwrap();
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_policy_mapping() {
        assert_eq!(thread_policy(None), ParallelPolicy::Sequential);
        assert_eq!(thread_policy(Some(0)), ParallelPolicy::Auto);
        assert_eq!(thread_policy(Some(3)), ParallelPolicy::Threads(3));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = parse_args(&argv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn run_method_covers_all_names() {
        let graph = prop_netlist::generate::generate(
            &prop_netlist::generate::GeneratorConfig::new(40, 48, 160).with_seed(1),
        )
        .unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 40).unwrap();
        for method in [
            "prop", "prop-paper", "fm", "fm-tree", "la2", "la3", "kl", "sa", "eig1", "melo",
            "paraboli", "window", "ml",
        ] {
            let result =
                run_method(method, &graph, balance, 2, 0, ParallelPolicy::Sequential).unwrap();
            assert!(result.partition.is_balanced(balance), "{method}");
            let par =
                run_method(method, &graph, balance, 2, 0, ParallelPolicy::Threads(2)).unwrap();
            if method == "ml" {
                // For ml, --threads engages the deterministic
                // intra-parallel V-cycle — a different algorithm than the
                // sequential engine, but bit-identical across thread
                // counts.
                assert!(par.partition.is_balanced(balance), "{method}");
                let one =
                    run_method(method, &graph, balance, 2, 0, ParallelPolicy::Threads(1)).unwrap();
                assert_eq!(par, one, "{method}");
            } else {
                // Fanned-out runs must reproduce the sequential result
                // exactly.
                assert_eq!(par, result, "{method}");
            }
        }
        assert!(run_method("nope", &graph, balance, 1, 0, ParallelPolicy::Sequential).is_err());
    }

    #[test]
    fn assignment_lists_every_node() {
        let graph = prop_netlist::generate::generate(
            &prop_netlist::generate::GeneratorConfig::new(10, 12, 40).with_seed(2),
        )
        .unwrap();
        let balance = BalanceConstraint::bisection(10);
        let result = run_method("fm", &graph, balance, 1, 0, ParallelPolicy::Sequential).unwrap();
        let text = render_assignment(&graph, &result);
        assert_eq!(text.lines().count(), 10);
        assert!(text.lines().all(|l| l.ends_with(" A") || l.ends_with(" B")));
    }

    #[test]
    fn extension_dispatch() {
        assert!(load_netlist("/definitely/missing.hgr").is_err());
        assert!(load_netlist("/definitely/missing.hgb").is_err());
        let g = prop_netlist::generate::generate(
            &prop_netlist::generate::GeneratorConfig::new(6, 6, 20).with_seed(3),
        )
        .unwrap();
        assert!(render_netlist(&g, "x.hgr").is_ok());
        assert!(render_netlist(&g, "x.netd").is_ok());
        assert!(render_netlist(&g, "x.xml").is_err());
        // The binary snapshot is not a text format.
        assert!(render_netlist(&g, "x.hgb").is_err());
    }

    #[test]
    fn hgb_snapshot_roundtrips_through_the_cli_helpers() {
        let dir = std::env::temp_dir().join(format!("prop-cli-hgb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.hgb");
        let path = path.to_str().unwrap();
        let g = prop_netlist::generate::generate(
            &prop_netlist::generate::GeneratorConfig::new(40, 44, 150).with_seed(9),
        )
        .unwrap();
        write_netlist(&g, path).unwrap();
        let (loaded, report) = load_netlist_reported(path).unwrap();
        assert_eq!(loaded, g);
        let report = report.expect("hgb loads carry a report");
        assert!(report.bytes > 0);
        // Text formats carry no snapshot report.
        let hgr = dir.join("tiny.hgr");
        let hgr = hgr.to_str().unwrap();
        write_netlist(&g, hgr).unwrap();
        let (loaded, report) = load_netlist_reported(hgr).unwrap();
        assert_eq!(loaded, g);
        assert!(report.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn upload_and_submit_by_id_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("prop-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_dir = dir.join("store");
        let handle = prop_serve::start(&prop_serve::ServerConfig {
            workers: 1,
            queue_cap: 4,
            store_dir: Some(store_dir.to_string_lossy().into_owned()),
            ..prop_serve::ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();

        // Upload a .hgb snapshot, then sweep against it by id.
        let file = dir.join("tiny.hgb");
        let g = prop_netlist::generate::generate(
            &prop_netlist::generate::GeneratorConfig::new(30, 36, 120).with_seed(8),
        )
        .unwrap();
        write_netlist(&g, file.to_str().unwrap()).unwrap();
        run(parse_args(&argv(&["upload", file.to_str().unwrap(), "--addr", &addr])).unwrap())
            .unwrap();
        run(parse_args(&argv(&[
            "submit", "--circuit-id", "tiny", "--addr", &addr, "--engine", "fm", "--runs", "2",
        ]))
        .unwrap())
        .unwrap();
        run(parse_args(&argv(&["ctl", "circuits", "--addr", &addr])).unwrap()).unwrap();
        run(parse_args(&argv(&["ctl", "evict", "--circuit", "tiny", "--addr", &addr])).unwrap())
            .unwrap();

        run(parse_args(&argv(&["ctl", "shutdown", "--addr", &addr])).unwrap()).unwrap();
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
