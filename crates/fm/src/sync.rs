//! Synchronous-round refinement: the deterministic intra-parallel
//! counterpart of the FM pass.
//!
//! Classic FM is inherently sequential — every selection depends on the
//! delta-updated gains of all earlier moves. Following Gottesbüren et
//! al.'s deterministic parallel scheme, [`SyncRoundFm`] replaces the
//! move-by-move loop with *synchronous rounds*:
//!
//! 1. **Collect** (parallel): every node's move gain is evaluated against
//!    the frozen round-start partition, over fixed node chunks via
//!    [`prop_core::map_chunks`]. Positive-gain nodes become candidates.
//!    The candidate set is a pure function of the partition — chunking
//!    only schedules the evaluation.
//! 2. **Order** (deterministic): candidates sort by descending round-start
//!    gain, ties broken by a salted hash of the node id and then the id
//!    itself — a total order independent of arrival order and thread
//!    count.
//! 3. **Apply-prefix** (sequential, cheap): candidates are tentatively
//!    applied in that order, each recording its *exact* immediate gain
//!    (recomputed at apply time, so stale round-start gains cannot
//!    corrupt the cut) and post-move feasibility into a
//!    [`PrefixTracker`]. The best feasible positive prefix commits; the
//!    tail rolls back — the same max-prefix rule FM, LA, and PROP share.
//!
//! Rounds repeat until no prefix commits. Because a committed prefix has
//! strictly positive cumulative gain, the cut strictly decreases every
//! round and the loop terminates. The result is bit-identical for every
//! [`ParallelPolicy`]: only step 1's *execution* is parallel, never its
//! outcome.

use prop_core::prof;
use prop_core::{
    map_chunks, BalanceConstraint, Bipartition, CutState, ImproveStats, ParallelPolicy,
    Partitioner, Side, SideWeights,
};
use prop_dstruct::PrefixTracker;
use prop_netlist::{Hypergraph, NodeId};

/// Nodes per collection chunk. Fixed — chunk boundaries are part of the
/// deterministic contract (they depend only on the node count), though
/// the *result* is chunking-independent anyway: chunks partition the node
/// range and candidate selection is per-node.
const SYNC_CHUNK: usize = 2048;

/// Default salt for the candidate-order tie-break hash.
const ORDER_SALT: u64 = 0x5bf0_3635_16f5_cd7b;

/// Splitmix64-style finalizer: the same bijective mixer behind the
/// multilevel seed streams, used here to shuffle equal-gain candidates
/// deterministically instead of favoring low node ids.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The synchronous-round refiner. Works for arbitrary node and net
/// weights (gains stay `f64` — no bucket integrality requirement).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyncRoundFm {
    /// Safety bound on rounds per run (a round ≈ an FM pass in cost).
    pub max_rounds: usize,
    /// Worker policy for the parallel collection phase. Results are
    /// bit-identical across policies; this only sets the execution width.
    pub policy: ParallelPolicy,
    /// Salt of the equal-gain tie-break hash.
    pub salt: u64,
}

impl Default for SyncRoundFm {
    fn default() -> Self {
        SyncRoundFm {
            max_rounds: 64,
            policy: ParallelPolicy::Sequential,
            salt: ORDER_SALT,
        }
    }
}

impl Partitioner for SyncRoundFm {
    fn name(&self) -> &str {
        "FM-sync"
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        let n = graph.num_nodes();
        let mut cut = CutState::new(graph, partition);
        if n == 0 {
            return ImproveStats {
                passes: 0,
                cut_cost: cut.cut_cost(),
            };
        }
        let mut rounds = 0;
        let mut prefix = PrefixTracker::with_capacity(n.min(4096));
        let mut moves: Vec<NodeId> = Vec::new();
        while rounds < self.max_rounds {
            // Cooperative cancellation at the round boundary; the
            // collection phase below runs on worker threads, so the
            // thread-local token slot is polled here, on the calling
            // thread, like the FM pass loop does.
            if prop_core::cancel::requested() {
                break;
            }
            rounds += 1;

            // Collect: frozen-partition gains, parallel over node chunks.
            let frozen: &Bipartition = partition;
            let frozen_cut = &cut;
            let mut candidates: Vec<(f64, u32)> =
                map_chunks(self.policy, n, SYNC_CHUNK, |_, range| {
                    range
                        .filter_map(|v| {
                            let gain = frozen_cut.move_gain(graph, frozen, NodeId::new(v));
                            (gain > 0.0).then_some((gain, v as u32))
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            if candidates.is_empty() {
                prof::count_sync_round(0, 0);
                break;
            }

            // Order: gain desc, salted hash, id — a total order, so the
            // sort result cannot depend on the (already deterministic)
            // concatenation order of the chunks.
            let salt = self.salt;
            candidates.sort_unstable_by(|&(ga, a), &(gb, b)| {
                gb.partial_cmp(&ga)
                    .expect("finite gains")
                    .then_with(|| mix64(salt ^ u64::from(a)).cmp(&mix64(salt ^ u64::from(b))))
                    .then_with(|| a.cmp(&b))
            });

            // Apply-prefix: tentative moves in sorted order, exact
            // immediate gains, best feasible positive prefix commits.
            let mut side_weights = SideWeights::new(graph, partition);
            prefix.clear();
            moves.clear();
            for &(_, id) in &candidates {
                let v = NodeId::new(id as usize);
                let from = partition.side(v);
                let counts = [partition.count(Side::A), partition.count(Side::B)];
                let allowed = if balance.is_weighted() {
                    balance.allows_node_move(
                        from,
                        counts,
                        side_weights.as_array(),
                        graph.node_weight(v),
                    )
                } else {
                    balance.allows_move(from, counts[0], counts[1])
                };
                if !allowed {
                    continue;
                }
                let immediate = cut.apply_move(graph, partition, v);
                side_weights.apply_move(from, graph.node_weight(v));
                prefix.push(
                    immediate,
                    balance.is_feasible(
                        [partition.count(Side::A), partition.count(Side::B)],
                        side_weights.as_array(),
                    ),
                );
                moves.push(v);
            }
            let commit = prefix.best().map_or(0, |b| b.moves);
            for i in (commit..moves.len()).rev() {
                cut.apply_move(graph, partition, moves[i]);
            }
            prof::count_sync_round(candidates.len() as u64, commit as u64);
            if commit == 0 {
                break;
            }
        }
        ImproveStats {
            passes: rounds,
            cut_cost: cut.cut_cost(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn circuit(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(120, 132, 440).with_seed(seed)).unwrap()
    }

    #[test]
    fn result_is_policy_independent() {
        let g = circuit(3);
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let mut rng = StdRng::seed_from_u64(7);
        let initial = Bipartition::random(g.num_nodes(), &mut rng);
        let mut baseline = initial.clone();
        let stats = SyncRoundFm::default().improve(&g, &mut baseline, balance);
        for threads in [1usize, 2, 4] {
            let refiner = SyncRoundFm {
                policy: ParallelPolicy::Threads(threads),
                ..SyncRoundFm::default()
            };
            let mut p = initial.clone();
            let s = refiner.improve(&g, &mut p, balance);
            assert_eq!(p, baseline, "diverged at {threads} threads");
            assert_eq!(s, stats);
        }
        let auto = SyncRoundFm {
            policy: ParallelPolicy::Auto,
            ..SyncRoundFm::default()
        };
        let mut p = initial;
        auto.improve(&g, &mut p, balance);
        assert_eq!(p, baseline);
    }

    #[test]
    fn never_worsens_and_reports_exact_cut() {
        let g = circuit(11);
        let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = Bipartition::random(g.num_nodes(), &mut rng);
            let before = cut_cost(&g, &p);
            let stats = SyncRoundFm::default().improve(&g, &mut p, balance);
            assert!(stats.cut_cost <= before);
            assert_eq!(stats.cut_cost, cut_cost(&g, &p));
            assert!(p.is_balanced(balance));
            assert!(stats.passes >= 1);
        }
    }

    #[test]
    fn improves_materially_from_random() {
        // Not a quality pin, just a sanity floor: rounds must actually
        // converge somewhere below the random-cut baseline.
        let g = circuit(5);
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Bipartition::random(g.num_nodes(), &mut rng);
        let before = cut_cost(&g, &p);
        let stats = SyncRoundFm::default().improve(&g, &mut p, balance);
        assert!(
            stats.cut_cost < before * 0.8,
            "sync rounds barely improved: {before} -> {}",
            stats.cut_cost
        );
    }

    #[test]
    fn handles_weighted_nets_and_nodes() {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(10.0, [0, 1]).unwrap();
        b.add_net(10.0, [2, 3]).unwrap();
        b.add_net(0.5, [1, 2]).unwrap();
        b.set_node_weights(vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::weighted(0.4, 0.6, &g).unwrap();
        // Start from the worst split: heavy nets cut.
        let mut p = Bipartition::from_sides(vec![Side::A, Side::B, Side::A, Side::B]);
        let stats = SyncRoundFm::default().improve(&g, &mut p, balance);
        assert_eq!(stats.cut_cost, 0.5);
        assert_eq!(stats.cut_cost, cut_cost(&g, &p));
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        let mut p = Bipartition::from_sides(Vec::new());
        let stats = SyncRoundFm::default().improve(&g, &mut p, BalanceConstraint::bisection(0));
        assert_eq!(stats.passes, 0);
        assert_eq!(stats.cut_cost, 0.0);
    }

    #[test]
    fn cancellation_stops_at_a_round_boundary() {
        let g = circuit(9);
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let token = prop_core::CancelToken::new();
        token.cancel();
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = Bipartition::random(g.num_nodes(), &mut rng);
        let before = p.clone();
        let stats = prop_core::cancel::scope(&token, || {
            SyncRoundFm::default().improve(&g, &mut p, balance)
        });
        // Pre-tripped token: zero rounds run, the partition is untouched
        // and the reported cut is still exact.
        assert_eq!(stats.passes, 0);
        assert_eq!(p, before);
        assert_eq!(stats.cut_cost, cut_cost(&g, &p));
    }
}
