//! The Kernighan–Lin pair-swap heuristic on the clique-expanded graph.

use prop_core::{BalanceConstraint, Bipartition, CutState, ImproveStats, Partitioner, Side};
use prop_netlist::{Hypergraph, NodeId};
use std::collections::HashMap;

/// The classic Kernighan–Lin bisection heuristic [Kernighan & Lin 1970],
/// the ancestor of FM referenced in §1 of the paper.
///
/// KL operates on ordinary graphs, so the hypergraph is clique-expanded:
/// a net of size `q` and weight `w` becomes a `q`-clique of edges with
/// weight `w / (q − 1)` (the standard net model; nets larger than
/// [`max_clique_net`] are skipped to bound the expansion). Pass acceptance
/// maximises the graph-model gain; the reported cut is the true hypergraph
/// cut.
///
/// Pair swaps preserve side sizes exactly, so KL never changes the balance
/// of its input partition.
///
/// ```
/// use prop_core::{BalanceConstraint, Partitioner};
/// use prop_fm::Kl;
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(40, 48, 160).with_seed(8))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let result = Kl::default().run_seeded(&graph, balance, 0)?;
/// assert!(result.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
///
/// [`max_clique_net`]: Kl::max_clique_net
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Kl {
    /// Safety bound on passes per run.
    pub max_passes: usize,
    /// Nets larger than this are omitted from the clique expansion
    /// (their O(q²) edge count would dominate; large nets carry little
    /// placement signal anyway).
    pub max_clique_net: usize,
}

impl Default for Kl {
    fn default() -> Self {
        Kl {
            max_passes: 16,
            max_clique_net: 64,
        }
    }
}

struct CliqueGraph {
    /// Adjacency lists: `adj[v]` = (neighbor, accumulated edge weight).
    adj: Vec<Vec<(u32, f64)>>,
    /// Pair-weight lookup with `(min, max)` keys.
    pair: HashMap<(u32, u32), f64>,
}

impl CliqueGraph {
    fn build(graph: &Hypergraph, max_clique_net: usize) -> Self {
        let mut pair: HashMap<(u32, u32), f64> = HashMap::new();
        for net in graph.nets() {
            let pins = graph.pins_of(net);
            let q = pins.len();
            if !(2..=max_clique_net).contains(&q) {
                continue;
            }
            let w = graph.net_weight(net) / (q as f64 - 1.0);
            for i in 0..q {
                for j in (i + 1)..q {
                    let (a, b) = (pins[i].index() as u32, pins[j].index() as u32);
                    let key = (a.min(b), a.max(b));
                    *pair.entry(key).or_insert(0.0) += w;
                }
            }
        }
        // Deterministic adjacency: hash-map order varies per process, and
        // float summation order must not.
        let mut edges: Vec<((u32, u32), f64)> = pair.iter().map(|(&k, &w)| (k, w)).collect();
        edges.sort_unstable_by_key(|&(k, _)| k);
        let mut adj = vec![Vec::new(); graph.num_nodes()];
        for ((a, b), w) in edges {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        CliqueGraph { adj, pair }
    }

    fn weight(&self, a: u32, b: u32) -> f64 {
        self.pair
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(0.0)
    }
}

impl Partitioner for Kl {
    fn name(&self) -> &str {
        "KL"
    }

    /// # Panics
    ///
    /// Panics if the graph has non-unit node sizes: pair swaps preserve
    /// counts, not weights, so KL only supports the unit-size criterion.
    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        _balance: BalanceConstraint,
    ) -> ImproveStats {
        assert!(
            graph.has_unit_node_weights(),
            "KL pair swaps require unit node sizes"
        );
        let n = graph.num_nodes();
        let clique = CliqueGraph::build(graph, self.max_clique_net);
        let mut passes = 0;
        while passes < self.max_passes {
            // Cooperative cancellation at the pass boundary.
            if prop_core::cancel::requested() {
                break;
            }
            passes += 1;
            if self.run_pass(&clique, partition, n) <= 0.0 {
                break;
            }
        }
        ImproveStats {
            passes,
            cut_cost: CutState::new(graph, partition).cut_cost(),
        }
    }
}

impl Kl {
    /// One KL pass: greedy best-pair virtual swaps with D-value updates,
    /// then commit the best prefix. Returns the committed graph-model
    /// gain.
    fn run_pass(&self, clique: &CliqueGraph, partition: &mut Bipartition, n: usize) -> f64 {
        // D[v] = external − internal edge weight.
        let mut d = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)] // d and adj are indexed in lockstep
        for v in 0..n {
            let sv = partition.side(NodeId::new(v));
            for &(u, w) in &clique.adj[v] {
                if partition.side(NodeId::new(u as usize)) == sv {
                    d[v] -= w;
                } else {
                    d[v] += w;
                }
            }
        }
        let mut locked = vec![false; n];
        let mut swaps: Vec<(u32, u32, f64)> = Vec::new();
        let steps = partition.count(Side::A).min(partition.count(Side::B));
        for _ in 0..steps {
            // Free nodes of each side sorted by D descending.
            let mut free: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
            for v in 0..n {
                if !locked[v] {
                    free[partition.side(NodeId::new(v)).index()].push(v as u32);
                }
            }
            for side in free.iter_mut() {
                side.sort_by(|&x, &y| {
                    d[y as usize]
                        .partial_cmp(&d[x as usize])
                        .expect("finite D values")
                });
            }
            if free[0].is_empty() || free[1].is_empty() {
                break;
            }
            // Early-terminating best-pair scan (classic KL optimisation).
            let mut best: Option<(u32, u32, f64)> = None;
            let top_b = d[free[1][0] as usize];
            for &a in &free[0] {
                if let Some((_, _, bg)) = best {
                    if d[a as usize] + top_b <= bg {
                        break;
                    }
                }
                for &b in &free[1] {
                    if let Some((_, _, bg)) = best {
                        if d[a as usize] + d[b as usize] <= bg {
                            break;
                        }
                    }
                    let g = d[a as usize] + d[b as usize] - 2.0 * clique.weight(a, b);
                    if best.is_none_or(|(_, _, bg)| g > bg) {
                        best = Some((a, b, g));
                    }
                }
            }
            let Some((a, b, g)) = best else { break };
            locked[a as usize] = true;
            locked[b as usize] = true;
            // Update D of free neighbors as if a and b swapped sides.
            let side_a = partition.side(NodeId::new(a as usize));
            for &(x, w) in &clique.adj[a as usize] {
                if locked[x as usize] {
                    continue;
                }
                let same_as_a = partition.side(NodeId::new(x as usize)) == side_a;
                d[x as usize] += if same_as_a { 2.0 * w } else { -2.0 * w };
            }
            let side_b = partition.side(NodeId::new(b as usize));
            for &(y, w) in &clique.adj[b as usize] {
                if locked[y as usize] {
                    continue;
                }
                let same_as_b = partition.side(NodeId::new(y as usize)) == side_b;
                d[y as usize] += if same_as_b { 2.0 * w } else { -2.0 * w };
            }
            swaps.push((a, b, g));
        }

        // Best prefix of swap gains.
        let mut sum = 0.0;
        let mut best_sum = 0.0;
        let mut best_k = 0;
        for (k, &(_, _, g)) in swaps.iter().enumerate() {
            sum += g;
            if sum > best_sum {
                best_sum = sum;
                best_k = k + 1;
            }
        }
        for &(a, b, _) in &swaps[..best_k] {
            partition.flip(NodeId::new(a as usize));
            partition.flip(NodeId::new(b as usize));
        }
        best_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(1.0, [i, j]).unwrap();
                b.add_net(1.0, [i + 4, j + 4]).unwrap();
            }
        }
        b.add_net(1.0, [0, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_the_planted_bisection() {
        let g = two_cliques();
        let balance = BalanceConstraint::bisection(8);
        let res = Kl::default().run_multi(&g, balance, 6, 0).unwrap();
        assert_eq!(res.cut_cost, 1.0);
        assert!(res.partition.is_balanced(balance));
    }

    #[test]
    fn swaps_preserve_side_sizes_exactly() {
        let g = generate(&GeneratorConfig::new(50, 60, 200).with_seed(19)).unwrap();
        let balance = BalanceConstraint::bisection(50);
        let mut rng = StdRng::seed_from_u64(2);
        let mut part = Bipartition::random(50, &mut rng);
        let (a0, b0) = (part.count(Side::A), part.count(Side::B));
        Kl::default().improve(&g, &mut part, balance);
        assert_eq!(part.count(Side::A), a0);
        assert_eq!(part.count(Side::B), b0);
    }

    #[test]
    fn clique_expansion_weights() {
        let mut b = HypergraphBuilder::new(3);
        b.add_net(2.0, [0, 1, 2]).unwrap();
        b.add_net(1.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        let clique = CliqueGraph::build(&g, 64);
        // 3-pin net of weight 2 → edges of weight 1; the 2-pin net adds 1
        // more to (0,1).
        assert_eq!(clique.weight(0, 1), 2.0);
        assert_eq!(clique.weight(0, 2), 1.0);
        assert_eq!(clique.weight(1, 2), 1.0);
        assert_eq!(clique.weight(2, 0), 1.0); // symmetric lookup
    }

    #[test]
    fn oversized_nets_are_skipped() {
        let mut b = HypergraphBuilder::new(5);
        b.add_net(1.0, [0, 1, 2, 3, 4]).unwrap();
        let g = b.build().unwrap();
        let clique = CliqueGraph::build(&g, 3);
        assert_eq!(clique.weight(0, 1), 0.0);
    }

    #[test]
    fn improves_hypergraph_cut_on_clustered_input() {
        let g = generate(&GeneratorConfig::new(60, 70, 230).with_seed(23)).unwrap();
        let balance = BalanceConstraint::bisection(60);
        let mut rng = StdRng::seed_from_u64(8);
        let mut part = Bipartition::random(60, &mut rng);
        let before = cut_cost(&g, &part);
        let stats = Kl::default().improve(&g, &mut part, balance);
        assert!(stats.cut_cost <= before, "{} > {before}", stats.cut_cost);
        assert_eq!(stats.cut_cost, cut_cost(&g, &part));
    }
}
