//! The two Fiduccia–Mattheyses variants: bucket array and balanced tree.

use crate::pass::{run_fm_pass, GainContainer, PassState};
use prop_core::{BalanceConstraint, Bipartition, CutState, ImproveStats, Partitioner, Side};
use prop_dstruct::{AvlTree, BucketList, OrderedF64};
use prop_netlist::Hypergraph;

/// FM with the classic O(1) gain bucket array (the paper's "FM-bucket").
///
/// Requires integral net costs — gains are then integers bounded by the
/// largest weighted node degree, which is what makes the bucket array
/// work. Unit costs are the paper's case; integral non-unit costs arise
/// from coarsened circuits whose merged nets sum their fine unit costs.
/// Use [`FmTree`] for fractional net weights.
///
/// ```
/// use prop_core::{BalanceConstraint, Partitioner};
/// use prop_fm::FmBucket;
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(60, 66, 220).with_seed(2))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let result = FmBucket::default().run_seeded(&graph, balance, 0)?;
/// assert!(result.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FmBucket {
    /// Safety bound on passes per run (the paper observes 2–4 in practice).
    pub max_passes: usize,
}

impl Default for FmBucket {
    fn default() -> Self {
        FmBucket { max_passes: 64 }
    }
}

/// FM with a balanced-tree gain structure (the paper's "FM-tree").
///
/// Handles arbitrary net weights; Θ(nd log n) per pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FmTree {
    /// Safety bound on passes per run.
    pub max_passes: usize,
}

impl Default for FmTree {
    fn default() -> Self {
        FmTree { max_passes: 64 }
    }
}

struct BucketContainer {
    lists: [BucketList; 2],
}

impl BucketContainer {
    fn new(n: usize, max_abs_gain: i64) -> Self {
        BucketContainer {
            lists: [
                BucketList::new(n, max_abs_gain),
                BucketList::new(n, max_abs_gain),
            ],
        }
    }
}

/// Converts a unit-cost FM gain (an exact small integer stored as `f64`)
/// to its bucket index.
fn integral(gain: f64) -> i64 {
    let rounded = gain.round();
    debug_assert!(
        (gain - rounded).abs() < 1e-6,
        "bucket FM requires integral gains, got {gain}"
    );
    rounded as i64
}

impl GainContainer for BucketContainer {
    fn clear(&mut self) {
        // BucketList has no O(1) clear; rebuild is cheap relative to a pass
        // and happens once per pass.
        let cap = self.lists[0].capacity();
        let bound = self.lists[0].max_abs_gain();
        self.lists = [BucketList::new(cap, bound), BucketList::new(cap, bound)];
    }
    fn insert(&mut self, node: u32, side: Side, gain: f64) {
        self.lists[side.index()].insert(node as usize, integral(gain));
    }
    fn remove(&mut self, node: u32, side: Side, gain: f64) {
        let _ = gain;
        let removed = self.lists[side.index()].remove(node as usize);
        debug_assert!(removed);
    }
    fn reposition(&mut self, node: u32, side: Side, _old: f64, new_gain: f64) {
        self.lists[side.index()].update(node as usize, integral(new_gain));
    }
    fn best(&mut self, side: Side) -> Option<(f64, u32)> {
        let list = &mut self.lists[side.index()];
        let gain = list.max_gain()?;
        let node = list.peek_max()?;
        Some((gain as f64, node as u32))
    }
    fn best_where(
        &mut self,
        side: Side,
        fits: &mut dyn FnMut(u32) -> bool,
    ) -> Option<(f64, u32)> {
        self.lists[side.index()]
            .iter_desc()
            .find(|&(id, _)| fits(id as u32))
            .map(|(id, g)| (g as f64, id as u32))
    }
}

/// Tree container keyed by `(gain, recency stamp, node)`: among equal
/// gains the most recently (re)inserted node wins, matching the LIFO
/// tie-breaking of the bucket structure — a detail known to matter for FM
/// cut quality.
pub(crate) struct TreeContainer {
    trees: [AvlTree<(OrderedF64, u64, u32)>; 2],
    stamp: Vec<u64>,
    next_stamp: u64,
}

impl TreeContainer {
    pub(crate) fn new(capacity: usize) -> Self {
        TreeContainer {
            trees: [AvlTree::new(), AvlTree::new()],
            stamp: vec![0; capacity],
            next_stamp: 0,
        }
    }
}

impl GainContainer for TreeContainer {
    fn clear(&mut self) {
        self.trees[0].clear();
        self.trees[1].clear();
    }
    fn insert(&mut self, node: u32, side: Side, gain: f64) {
        self.next_stamp += 1;
        self.stamp[node as usize] = self.next_stamp;
        let inserted =
            self.trees[side.index()].insert((OrderedF64::new(gain), self.next_stamp, node));
        debug_assert!(inserted);
    }
    fn remove(&mut self, node: u32, side: Side, gain: f64) {
        let key = (OrderedF64::new(gain), self.stamp[node as usize], node);
        let removed = self.trees[side.index()].remove(&key);
        debug_assert!(removed);
    }
    fn best(&mut self, side: Side) -> Option<(f64, u32)> {
        self.trees[side.index()]
            .max()
            .map(|&(g, _, id)| (g.get(), id))
    }
    fn best_where(
        &mut self,
        side: Side,
        fits: &mut dyn FnMut(u32) -> bool,
    ) -> Option<(f64, u32)> {
        self.trees[side.index()]
            .iter_desc()
            .find(|&&(_, _, id)| fits(id))
            .map(|&(g, _, id)| (g.get(), id))
    }
}

impl Partitioner for FmBucket {
    fn name(&self) -> &str {
        "FM-bucket"
    }

    /// # Panics
    ///
    /// Panics if the graph has fractional net weights; the bucket
    /// structure assumes integral gains (use [`FmTree`] instead).
    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        assert!(
            graph.has_integral_weights(),
            "FM-bucket requires integral net costs; use FM-tree for fractional nets"
        );
        // A node's gain is bounded by its weighted degree (every incident
        // net fully for or against the move). Unit costs reduce this to
        // the plain max degree.
        let max_gain = if graph.has_unit_weights() {
            graph.stats().max_degree as i64
        } else {
            let mut wdeg = vec![0.0f64; graph.num_nodes()];
            for net in graph.nets() {
                let w = graph.net_weight(net);
                for &pin in graph.pins_of(net) {
                    wdeg[pin.index()] += w;
                }
            }
            wdeg.iter().fold(0.0f64, |a, &b| a.max(b)) as i64
        };
        let mut container = BucketContainer::new(graph.num_nodes(), max_gain.max(1));
        let mut state = PassState::new(graph.num_nodes());
        improve_with(
            "FM-bucket",
            graph,
            partition,
            balance,
            self.max_passes,
            &mut container,
            &mut state,
        )
    }
}

impl Partitioner for FmTree {
    fn name(&self) -> &str {
        "FM-tree"
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        let mut container = TreeContainer::new(graph.num_nodes());
        let mut state = PassState::new(graph.num_nodes());
        improve_with(
            "FM-tree",
            graph,
            partition,
            balance,
            self.max_passes,
            &mut container,
            &mut state,
        )
    }
}

fn improve_with<C: GainContainer>(
    engine: &'static str,
    graph: &Hypergraph,
    partition: &mut Bipartition,
    balance: BalanceConstraint,
    max_passes: usize,
    container: &mut C,
    state: &mut PassState,
) -> ImproveStats {
    let mut cut = CutState::new(graph, partition);
    let mut passes = 0;
    while passes < max_passes {
        // Cooperative cancellation at the pass boundary (no-op unless a
        // tripped token is installed on this thread).
        if prop_core::cancel::requested() {
            break;
        }
        passes += 1;
        let committed =
            run_fm_pass(engine, graph, partition, &mut cut, balance, container, state);
        if committed <= 0.0 {
            break;
        }
    }
    ImproveStats {
        passes,
        cut_cost: cut.cut_cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(1.0, [i, j]).unwrap();
                b.add_net(1.0, [i + 4, j + 4]).unwrap();
            }
        }
        b.add_net(1.0, [0, 7]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bucket_finds_optimal_bridge_cut() {
        let g = two_cliques();
        let balance = BalanceConstraint::bisection(8);
        let res = FmBucket::default().run_multi(&g, balance, 5, 0).unwrap();
        assert_eq!(res.cut_cost, 1.0);
    }

    #[test]
    fn tree_finds_optimal_bridge_cut() {
        let g = two_cliques();
        let balance = BalanceConstraint::bisection(8);
        let res = FmTree::default().run_multi(&g, balance, 5, 0).unwrap();
        assert_eq!(res.cut_cost, 1.0);
    }

    #[test]
    fn bucket_and_tree_agree_on_unit_costs() {
        // Same selection rule and same deterministic tie-breaks modulo
        // container order; they need not match move-for-move, but both must
        // reach feasible local minima of the same quality class, and each
        // must equal its own recomputed cut.
        let g = generate(&GeneratorConfig::new(100, 110, 370).with_seed(12)).unwrap();
        let balance = BalanceConstraint::bisection(100);
        let rb = FmBucket::default().run_multi(&g, balance, 3, 9).unwrap();
        let rt = FmTree::default().run_multi(&g, balance, 3, 9).unwrap();
        assert_eq!(rb.cut_cost, cut_cost(&g, &rb.partition));
        assert_eq!(rt.cut_cost, cut_cost(&g, &rt.partition));
        assert!(rb.partition.is_balanced(balance));
        assert!(rt.partition.is_balanced(balance));
    }

    #[test]
    fn tree_handles_weighted_nets() {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(10.0, [0, 1]).unwrap();
        b.add_net(10.0, [2, 3]).unwrap();
        b.add_net(0.5, [1, 2]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::bisection(4);
        let res = FmTree::default().run_multi(&g, balance, 4, 0).unwrap();
        // Optimal bisection keeps the heavy nets internal.
        assert_eq!(res.cut_cost, 0.5);
    }

    #[test]
    #[should_panic(expected = "integral net costs")]
    fn bucket_rejects_fractional_nets() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(0.5, [0, 1]).unwrap();
        let g = b.build().unwrap();
        let mut p = Bipartition::random(2, &mut StdRng::seed_from_u64(0));
        let _ = FmBucket::default().improve(&g, &mut p, BalanceConstraint::bisection(2));
    }

    #[test]
    fn bucket_and_tree_agree_on_integral_weighted_nets() {
        // The coarse-circuit case: integral non-unit net costs. The bucket
        // structure must accept them and find the same-quality minimum as
        // the tree on a circuit with an unambiguous optimum.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(10.0, [0, 1]).unwrap();
        b.add_net(10.0, [2, 3]).unwrap();
        b.add_net(2.0, [1, 2]).unwrap();
        let g = b.build().unwrap();
        assert!(!g.has_unit_weights() && g.has_integral_weights());
        let balance = BalanceConstraint::bisection(4);
        let rb = FmBucket::default().run_multi(&g, balance, 4, 0).unwrap();
        let rt = FmTree::default().run_multi(&g, balance, 4, 0).unwrap();
        assert_eq!(rb.cut_cost, 2.0);
        assert_eq!(rt.cut_cost, 2.0);
    }

    #[test]
    fn never_worsens() {
        let g = generate(&GeneratorConfig::new(80, 90, 300).with_seed(31)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 80).unwrap();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut part = Bipartition::random(80, &mut rng);
            let before = cut_cost(&g, &part);
            let stats = FmBucket::default().improve(&g, &mut part, balance);
            assert!(stats.cut_cost <= before);
            assert_eq!(stats.cut_cost, cut_cost(&g, &part));
            assert!(stats.passes >= 1);
        }
    }

    #[test]
    fn names() {
        assert_eq!(FmBucket::default().name(), "FM-bucket");
        assert_eq!(FmTree::default().name(), "FM-tree");
    }
}
