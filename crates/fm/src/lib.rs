//! Deterministic iterative-improvement baselines from the DAC-96 paper's
//! comparison set.
//!
//! * [`FmBucket`] — the Fiduccia–Mattheyses partitioner with the classic
//!   gain bucket array (requires unit net costs; Θ(nd) per pass).
//! * [`FmTree`] — FM with a balanced-tree gain structure, the variant the
//!   paper times for the non-unit-cost regime (Θ(nd log n) per pass,
//!   arbitrary net weights).
//! * [`La`] — Krishnamurthy's lookahead partitioner LA-k: gain *vectors*
//!   of depth `k`, compared lexicographically, with level 1 equal to the
//!   FM gain.
//! * [`Kl`] — the Kernighan–Lin pair-swap heuristic on the clique-expanded
//!   graph model, included as a classical reference point.
//! * [`SimulatedAnnealing`] — Metropolis annealing, the third class of
//!   approximate schemes §1 cites.
//! * [`SyncRoundFm`] — the deterministic intra-parallel variant of FM:
//!   synchronous rounds of parallel candidate collection followed by a
//!   sequential best-prefix commit, bit-identical at every thread count
//!   (the refinement engine of the intra-parallel multilevel V-cycle).
//!
//! All of them implement [`prop_core::Partitioner`], so the multi-run
//! protocol of the paper ("FM100" = best of 100 runs) is one call:
//!
//! ```
//! use prop_core::{BalanceConstraint, Partitioner};
//! use prop_fm::FmBucket;
//! use prop_netlist::generate::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::new(100, 110, 360).with_seed(1))?;
//! let balance = BalanceConstraint::bisection(graph.num_nodes());
//! let fm20 = FmBucket::default().run_multi(&graph, balance, 20, 0)?;
//! assert!(fm20.partition.is_balanced(balance));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fm;
mod kl;
mod la;
mod pass;
mod sa;
mod sync;

pub use fm::{FmBucket, FmTree};
pub use kl::Kl;
pub use la::La;
pub use sa::SimulatedAnnealing;
pub use sync::SyncRoundFm;
