//! Simulated-annealing partitioning [Sechen 1988], the third class of
//! approximate min-cut schemes cited in §1 of the paper.

use prop_core::{
    BalanceConstraint, Bipartition, CutState, ImproveStats, Partitioner, Side, SideWeights,
};
use prop_netlist::{Hypergraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Metropolis simulated-annealing bipartitioner.
///
/// Single-node flips are proposed uniformly at random; a flip of cut-cost
/// change `Δ` is accepted with probability `min(1, exp(−Δ/T))`, subject to
/// the pass-relaxed balance bound. The temperature follows a geometric
/// schedule calibrated from the initial cost scale, and the best
/// balance-feasible state seen is returned (annealing may end above it).
///
/// The randomness is derived deterministically from the input partition,
/// so the [`Partitioner`] multi-run protocol (different seeded initial
/// partitions) explores different trajectories while staying reproducible.
///
/// Included as a reference point: the paper's framing is that move-based
/// iterative improvement (FM, LA, PROP) dominates annealing at a fraction
/// of the run time, which the Table-2 style comparisons here confirm.
///
/// ```
/// use prop_core::{BalanceConstraint, Partitioner};
/// use prop_fm::SimulatedAnnealing;
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(60, 66, 220).with_seed(2))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let result = SimulatedAnnealing::default().run_seeded(&graph, balance, 0)?;
/// assert!(result.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimulatedAnnealing {
    /// Geometric cooling factor per temperature step (0 < α < 1).
    pub cooling: f64,
    /// Proposed moves per temperature step, as a multiple of `n`.
    pub moves_per_node: usize,
    /// The run stops once `T` falls below this fraction of the initial
    /// temperature.
    pub freeze_ratio: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            cooling: 0.9,
            moves_per_node: 8,
            freeze_ratio: 1e-3,
        }
    }
}

impl Partitioner for SimulatedAnnealing {
    fn name(&self) -> &str {
        "SA"
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        let n = graph.num_nodes();
        if n < 2 {
            return ImproveStats {
                passes: 0,
                cut_cost: CutState::new(graph, partition).cut_cost(),
            };
        }
        // Deterministic RNG from the input partition: multi-run gets
        // distinct trajectories, repeated calls are reproducible.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for v in graph.nodes() {
            hash ^= u64::from(partition.side(v) == Side::A) + 0x9e37_79b9;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(hash);

        let mut cut = CutState::new(graph, partition);
        let mut side_weights = SideWeights::new(graph, partition);

        // Calibrate T0 to the mean uphill move size.
        let mut uphill = 0.0;
        let mut uphill_count = 0usize;
        for _ in 0..(4 * n).min(2000) {
            let v = NodeId::new(rng.gen_range(0..n));
            let delta = -cut.move_gain(graph, partition, v);
            if delta > 0.0 {
                uphill += delta;
                uphill_count += 1;
            }
        }
        let t0 = if uphill_count > 0 {
            2.0 * uphill / uphill_count as f64
        } else {
            1.0
        };

        let mut best: Option<(Bipartition, f64)> = None;
        let consider_best =
            |partition: &Bipartition,
             cut: &CutState,
             weights: &SideWeights,
             best: &mut Option<(Bipartition, f64)>| {
                let counts = [partition.count(Side::A), partition.count(Side::B)];
                if balance.is_feasible(counts, weights.as_array())
                    && best.as_ref().is_none_or(|&(_, b)| cut.cut_cost() < b)
                {
                    *best = Some((partition.clone(), cut.cut_cost()));
                }
            };
        consider_best(partition, &cut, &side_weights, &mut best);

        let mut temperature = t0;
        let mut steps = 0usize;
        while temperature > t0 * self.freeze_ratio {
            // Cooperative cancellation at the temperature-step boundary;
            // the post-loop restore below still lands on the best feasible
            // state seen so far.
            if prop_core::cancel::requested() {
                break;
            }
            steps += 1;
            for _ in 0..self.moves_per_node * n {
                let v = NodeId::new(rng.gen_range(0..n));
                let from = partition.side(v);
                let counts = [partition.count(Side::A), partition.count(Side::B)];
                if !balance.allows_node_move(
                    from,
                    counts,
                    side_weights.as_array(),
                    graph.node_weight(v),
                ) {
                    continue;
                }
                let delta = -cut.move_gain(graph, partition, v);
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
                if accept {
                    cut.apply_move(graph, partition, v);
                    side_weights.apply_move(from, graph.node_weight(v));
                    if delta < 0.0 {
                        consider_best(partition, &cut, &side_weights, &mut best);
                    }
                }
            }
            consider_best(partition, &cut, &side_weights, &mut best);
            temperature *= self.cooling;
        }

        // Land on the best feasible state seen.
        if let Some((best_partition, best_cost)) = best {
            if best_cost < cut.cut_cost()
                || !balance.is_feasible(
                    [partition.count(Side::A), partition.count(Side::B)],
                    side_weights.as_array(),
                )
            {
                *partition = best_partition;
                cut = CutState::new(graph, partition);
            }
        }
        ImproveStats {
            passes: steps,
            cut_cost: cut.cut_cost(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;

    #[test]
    fn finds_the_two_clique_bisection() {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(1.0, [i, j]).unwrap();
                b.add_net(1.0, [i + 4, j + 4]).unwrap();
            }
        }
        b.add_net(1.0, [0, 4]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::bisection(8);
        let res = SimulatedAnnealing::default()
            .run_multi(&g, balance, 3, 0)
            .unwrap();
        assert_eq!(res.cut_cost, 1.0);
    }

    #[test]
    fn result_is_feasible_and_consistent() {
        let g = generate(&GeneratorConfig::new(90, 100, 330).with_seed(7)).unwrap();
        for (r1, r2) in [(0.5, 0.5), (0.45, 0.55)] {
            let balance = BalanceConstraint::new(r1, r2, 90).unwrap();
            let res = SimulatedAnnealing::default()
                .run_multi(&g, balance, 2, 1)
                .unwrap();
            assert!(res.partition.is_balanced(balance));
            assert_eq!(res.cut_cost, cut_cost(&g, &res.partition));
        }
    }

    #[test]
    fn deterministic_for_the_same_start() {
        let g = generate(&GeneratorConfig::new(50, 60, 200).with_seed(9)).unwrap();
        let balance = BalanceConstraint::bisection(50);
        let sa = SimulatedAnnealing::default();
        let a = sa.run_multi(&g, balance, 2, 4).unwrap();
        let b = sa.run_multi(&g, balance, 2, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handles_tiny_graphs() {
        let mut b = HypergraphBuilder::new(1);
        b.add_net(1.0, [0]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::bisection(1);
        let res = SimulatedAnnealing::default().run_seeded(&g, balance, 0).unwrap();
        assert_eq!(res.cut_cost, 0.0);
    }

    #[test]
    fn respects_weighted_balance() {
        let mut b = HypergraphBuilder::new(10);
        for i in 0..9 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        let mut w = vec![1.0; 10];
        w[0] = 5.0;
        b.set_node_weights(w).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::weighted(0.4, 0.6, &g).unwrap();
        let res = SimulatedAnnealing::default()
            .run_multi(&g, balance, 2, 0)
            .unwrap();
        let sw = SideWeights::new(&g, &res.partition);
        assert!(balance.is_feasible(
            [res.partition.count(Side::A), res.partition.count(Side::B)],
            sw.as_array()
        ));
    }
}
