//! The shared FM pass: selection, locking, delta gain updates, prefix
//! commit. Generic over the gain container (bucket array or AVL tree).

use prop_core::{BalanceConstraint, Bipartition, CutState, Side, SideWeights};
use prop_dstruct::PrefixTracker;
use prop_netlist::{Hypergraph, NodeId};

/// A per-side gain container for the FM pass.
pub(crate) trait GainContainer {
    /// Empties both sides.
    fn clear(&mut self);
    /// Adds a node with the given gain.
    fn insert(&mut self, node: u32, side: Side, gain: f64);
    /// Removes a node (its current gain and side are supplied).
    fn remove(&mut self, node: u32, side: Side, gain: f64);
    /// Moves a node between gain positions.
    fn reposition(&mut self, node: u32, side: Side, old_gain: f64, new_gain: f64) {
        self.remove(node, side, old_gain);
        self.insert(node, side, new_gain);
    }
    /// The best (gain, node) of a side, ties broken arbitrarily but
    /// deterministically.
    fn best(&mut self, side: Side) -> Option<(f64, u32)>;
    /// The best (gain, node) of a side among nodes accepted by `fits` —
    /// the size-constrained selection scan. Implementations walk their
    /// descending order until `fits` accepts.
    fn best_where(
        &mut self,
        side: Side,
        fits: &mut dyn FnMut(u32) -> bool,
    ) -> Option<(f64, u32)>;
}

/// Reusable buffers for FM-style passes.
pub(crate) struct PassState {
    pub gains: Vec<f64>,
    pub locked: Vec<bool>,
    pub moves: Vec<NodeId>,
    pub prefix: PrefixTracker,
}

impl PassState {
    pub(crate) fn new(n: usize) -> Self {
        PassState {
            gains: vec![0.0; n],
            locked: vec![false; n],
            moves: Vec::with_capacity(n),
            prefix: PrefixTracker::with_capacity(n),
        }
    }
}

/// Runs one FM pass and returns the committed gain (0 when the pass was
/// fully rolled back). `engine` is the display name reported to an
/// installed auditor under the `debug-audit` feature.
pub(crate) fn run_fm_pass<C: GainContainer>(
    engine: &'static str,
    graph: &Hypergraph,
    partition: &mut Bipartition,
    cut: &mut CutState,
    balance: BalanceConstraint,
    container: &mut C,
    state: &mut PassState,
) -> f64 {
    #[cfg(not(feature = "debug-audit"))]
    let _ = engine;
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    #[cfg(feature = "debug-audit")]
    prop_core::audit::with_auditor(|a| {
        a.begin_pass(&prop_core::audit::PassBegin {
            engine,
            graph,
            partition,
            cut,
            balance,
        });
    });
    state.locked.iter_mut().for_each(|l| *l = false);
    state.moves.clear();
    state.prefix.clear();
    container.clear();
    let mut side_weights = SideWeights::new(graph, partition);
    for v in graph.nodes() {
        state.gains[v.index()] = cut.move_gain(graph, partition, v);
        container.insert(v.index() as u32, partition.side(v), state.gains[v.index()]);
    }

    while let Some((u, side)) =
        select_move(graph, partition, balance, &side_weights, container)
    {
        container.remove(u.index() as u32, side, state.gains[u.index()]);
        state.locked[u.index()] = true;
        let immediate = apply_move_with_deltas(graph, partition, cut, container, state, u);
        side_weights.apply_move(side, graph.node_weight(u));
        state.prefix.push(
            immediate,
            balance.is_feasible(
                [partition.count(Side::A), partition.count(Side::B)],
                side_weights.as_array(),
            ),
        );
        state.moves.push(u);
        #[cfg(feature = "debug-audit")]
        prop_core::audit::with_auditor(|a| {
            a.after_move(&prop_core::audit::MoveRecord {
                engine,
                graph,
                partition,
                cut,
                balance,
                moved: u,
                immediate_gain: immediate,
                gains: &state.gains,
                locked: &state.locked,
                probabilities: None,
                products: None,
                fresh: None,
                side_weights: side_weights.as_array(),
            });
        });
    }

    let best = state.prefix.best();
    let commit = best.map_or(0, |b| b.moves);
    for i in (commit..state.moves.len()).rev() {
        cut.apply_move(graph, partition, state.moves[i]);
    }
    let committed_gain = best.map_or(0.0, |b| b.gain);
    #[cfg(feature = "debug-audit")]
    prop_core::audit::with_auditor(|a| {
        a.after_pass(&prop_core::audit::PassRecord {
            engine,
            graph,
            partition,
            cut,
            balance,
            moves: &state.moves,
            immediate_gains: state.prefix.gains(),
            feasible: state.prefix.feasibility(),
            committed_moves: commit,
            committed_gain,
        });
    });
    committed_gain
}

/// The paper's selection rule: the best-gain node over both sides whose
/// move respects the pass-relaxed balance; if the global best is blocked,
/// the best node of the other side. Under a size-constrained balance the
/// containers are scanned in descending gain order for the first node
/// that fits.
pub(crate) fn select_move<C: GainContainer>(
    graph: &Hypergraph,
    partition: &Bipartition,
    balance: BalanceConstraint,
    side_weights: &SideWeights,
    container: &mut C,
) -> Option<(NodeId, Side)> {
    let counts = [partition.count(Side::A), partition.count(Side::B)];
    let weights = side_weights.as_array();
    let mut best: Option<(f64, u32, Side)> = None;
    for si in 0..2 {
        let side = Side::from_index(si);
        let candidate = if balance.is_weighted() {
            let mut fits = |id: u32| {
                balance.allows_node_move(
                    side,
                    counts,
                    weights,
                    graph.node_weight(NodeId::new(id as usize)),
                )
            };
            container.best_where(side, &mut fits)
        } else {
            if !balance.allows_move(side, counts[0], counts[1]) {
                continue;
            }
            container.best(side)
        };
        if let Some((g, id)) = candidate {
            let better = best.is_none_or(|(bg, bid, _)| (g, id) > (bg, bid));
            if better {
                best = Some((g, id, side));
            }
        }
    }
    best.map(|(_, id, side)| (NodeId::new(id as usize), side))
}

/// Moves `u` (already locked and removed from the container), applying the
/// classic FM delta rules to its free neighbors' gains. Returns the exact
/// immediate gain.
fn apply_move_with_deltas<C: GainContainer>(
    graph: &Hypergraph,
    partition: &mut Bipartition,
    cut: &mut CutState,
    container: &mut C,
    state: &mut PassState,
    u: NodeId,
) -> f64 {
    let from = partition.side(u);
    let to = from.other();

    // Before-move inspection of each incident net.
    for &net in graph.nets_of(u) {
        let w = graph.net_weight(net);
        let on_to = cut.pins_on(net, to);
        if on_to == 0 {
            // The net will enter the cut: every free pin gains by w (each
            // could later pull it back out).
            for &x in graph.pins_of(net) {
                if !state.locked[x.index()] {
                    bump(container, state, partition, x, w);
                }
            }
        } else if on_to == 1 {
            // The lone `to`-side pin loses its chance to uncut the net.
            for &x in graph.pins_of(net) {
                if !state.locked[x.index()] && partition.side(x) == to {
                    bump(container, state, partition, x, -w);
                }
            }
        }
    }

    let immediate = cut.apply_move(graph, partition, u);

    // After-move inspection.
    for &net in graph.nets_of(u) {
        let w = graph.net_weight(net);
        let on_from = cut.pins_on(net, from);
        if on_from == 0 {
            // The net left the cut: every free pin's gain drops by w.
            for &x in graph.pins_of(net) {
                if !state.locked[x.index()] {
                    bump(container, state, partition, x, -w);
                }
            }
        } else if on_from == 1 {
            // The lone remaining `from`-side pin can now uncut the net.
            for &x in graph.pins_of(net) {
                if !state.locked[x.index()] && partition.side(x) == from {
                    bump(container, state, partition, x, w);
                }
            }
        }
    }
    immediate
}

fn bump<C: GainContainer>(
    container: &mut C,
    state: &mut PassState,
    partition: &Bipartition,
    x: NodeId,
    delta: f64,
) {
    let old = state.gains[x.index()];
    let new = old + delta;
    state.gains[x.index()] = new;
    container.reposition(x.index() as u32, partition.side(x), old, new);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_dstruct::{AvlTree, OrderedF64};
    use prop_netlist::generate::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct TreeBox {
        trees: [AvlTree<(OrderedF64, u32)>; 2],
    }

    impl GainContainer for TreeBox {
        fn clear(&mut self) {
            self.trees[0].clear();
            self.trees[1].clear();
        }
        fn insert(&mut self, node: u32, side: Side, gain: f64) {
            self.trees[side.index()].insert((OrderedF64::new(gain), node));
        }
        fn remove(&mut self, node: u32, side: Side, gain: f64) {
            let removed = self.trees[side.index()].remove(&(OrderedF64::new(gain), node));
            debug_assert!(removed);
        }
        fn best(&mut self, side: Side) -> Option<(f64, u32)> {
            self.trees[side.index()].max().map(|&(g, id)| (g.get(), id))
        }
        fn best_where(
            &mut self,
            side: Side,
            fits: &mut dyn FnMut(u32) -> bool,
        ) -> Option<(f64, u32)> {
            self.trees[side.index()]
                .iter_desc()
                .find(|&&(_, id)| fits(id))
                .map(|&(g, id)| (g.get(), id))
        }
    }

    /// Delta-maintained gains must equal from-scratch FM gains after every
    /// move of a pass.
    #[test]
    fn delta_gains_match_recomputation() {
        let graph = generate(&GeneratorConfig::new(50, 60, 200).with_seed(17)).unwrap();
        let balance = BalanceConstraint::bisection(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut partition = Bipartition::random(50, &mut rng);
        let mut cut = CutState::new(&graph, &partition);
        let mut state = PassState::new(50);
        let mut container = TreeBox {
            trees: [AvlTree::new(), AvlTree::new()],
        };
        container.clear();
        for v in graph.nodes() {
            state.gains[v.index()] = cut.move_gain(&graph, &partition, v);
            container.insert(v.index() as u32, partition.side(v), state.gains[v.index()]);
        }
        for _ in 0..30 {
            let side_weights = SideWeights::new(&graph, &partition);
            let Some((u, side)) =
                select_move(&graph, &partition, balance, &side_weights, &mut container)
            else {
                break;
            };
            container.remove(u.index() as u32, side, state.gains[u.index()]);
            state.locked[u.index()] = true;
            apply_move_with_deltas(&graph, &mut partition, &mut cut, &mut container, &mut state, u);
            for x in graph.nodes() {
                if state.locked[x.index()] {
                    continue;
                }
                let fresh = cut.move_gain(&graph, &partition, x);
                assert!(
                    (state.gains[x.index()] - fresh).abs() < 1e-9,
                    "node {x}: delta {} vs fresh {fresh}",
                    state.gains[x.index()]
                );
            }
        }
    }

    #[test]
    fn pass_commits_consistent_state() {
        let graph = generate(&GeneratorConfig::new(64, 72, 250).with_seed(29)).unwrap();
        let balance = BalanceConstraint::bisection(64);
        let mut rng = StdRng::seed_from_u64(4);
        let mut partition = Bipartition::random(64, &mut rng);
        let mut cut = CutState::new(&graph, &partition);
        let before = cut.cut_cost();
        let mut state = PassState::new(64);
        let mut container = TreeBox {
            trees: [AvlTree::new(), AvlTree::new()],
        };
        let committed = run_fm_pass(
            "FM-test",
            &graph,
            &mut partition,
            &mut cut,
            balance,
            &mut container,
            &mut state,
        );
        assert_eq!(cut, CutState::new(&graph, &partition));
        assert!((before - cut.cut_cost() - committed).abs() < 1e-9);
        assert!(partition.is_balanced(balance));
        assert!(committed >= 0.0);
    }
}
