//! Krishnamurthy's lookahead partitioner LA-k.

use prop_core::{
    BalanceConstraint, Bipartition, CutState, ImproveStats, Partitioner, Side, SideWeights,
};
use prop_dstruct::{AvlTree, PrefixTracker};
use prop_netlist::{Hypergraph, NodeId};

/// Maximum supported lookahead depth. The paper reports `k = 2..4` as the
/// useful range and notes the memory cost explodes beyond that.
pub const LA_MAX_LOOKAHEAD: usize = 4;

/// A lookahead gain vector, compared lexicographically. `v[0]` equals the
/// FM gain; `v[i]` counts potential gains that need `i` more same-side
/// moves to realise, minus symmetric potential losses.
type GainVec = [i64; LA_MAX_LOOKAHEAD];

/// The LA-k partitioner [Krishnamurthy 1984], as summarised in §2 of the
/// DAC-96 paper: each node carries a `k`-element gain vector whose `i`-th
/// element is the number of nets connected to `u` with exactly `i − 1`
/// other free same-side nodes, minus the number of nets with exactly
/// `i − 1` free other-side nodes (nets with locked pins on the relevant
/// side are excluded — their state can no longer change from that side).
/// Vectors are compared lexicographically; level 1 is exactly the FM gain.
///
/// Net weights are ignored (treated as unit), matching the original
/// formulation; the constructor therefore refuses weighted graphs at
/// `improve` time.
///
/// ```
/// use prop_core::{BalanceConstraint, Partitioner};
/// use prop_fm::La;
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(60, 70, 230).with_seed(4))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let la3 = La::new(3).run_seeded(&graph, balance, 0)?;
/// assert!(la3.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct La {
    lookahead: usize,
    /// Safety bound on passes per run.
    pub max_passes: usize,
}

impl La {
    /// Creates an LA-k partitioner with lookahead depth `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= LA_MAX_LOOKAHEAD`.
    pub fn new(k: usize) -> Self {
        assert!(
            (1..=LA_MAX_LOOKAHEAD).contains(&k),
            "lookahead {k} outside 1..={LA_MAX_LOOKAHEAD}"
        );
        La {
            lookahead: k,
            max_passes: 64,
        }
    }

    /// The lookahead depth `k`.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Computes the gain vector of `u` under the current locks.
    fn vector(
        &self,
        graph: &Hypergraph,
        partition: &Bipartition,
        locked: &[bool],
        u: NodeId,
    ) -> GainVec {
        let mut v = [0i64; LA_MAX_LOOKAHEAD];
        let side = partition.side(u);
        for &net in graph.nets_of(u) {
            let mut free_same = 0usize;
            let mut locked_same = 0usize;
            let mut free_other = 0usize;
            let mut locked_other = 0usize;
            for &x in graph.pins_of(net) {
                if x == u {
                    continue;
                }
                let same = partition.side(x) == side;
                match (same, locked[x.index()]) {
                    (true, false) => free_same += 1,
                    (true, true) => locked_same += 1,
                    (false, false) => free_other += 1,
                    (false, true) => locked_other += 1,
                }
            }
            // Positive potential: a *cut* net leaves the cutset once u and
            // its `free_same` free same-side companions have all moved —
            // impossible if a same-side pin is locked in place
            // (Krishnamurthy's binding number ∞). This generalises E(u):
            // level 1 is exactly the nets u alone can uncut.
            if (free_other + locked_other > 0) && locked_same == 0 && free_same < self.lookahead {
                v[free_same] += 1;
            }
            // Negative potential: moving u forecloses the net leaving the
            // cut from the other side (or cuts an internal net, the
            // `free_other == 0` case) — unless an other-side pin is locked,
            // in which case that possibility is already gone.
            if locked_other == 0 && free_other < self.lookahead {
                v[free_other] -= 1;
            }
        }
        v
    }
}

impl Partitioner for La {
    fn name(&self) -> &str {
        match self.lookahead {
            1 => "LA-1",
            2 => "LA-2",
            3 => "LA-3",
            _ => "LA-4",
        }
    }

    /// # Panics
    ///
    /// Panics if the graph has non-unit net weights.
    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        assert!(
            graph.has_unit_weights(),
            "LA-k counts nets and requires unit net costs"
        );
        let n = graph.num_nodes();
        let mut cut = CutState::new(graph, partition);
        let mut passes = 0;
        let mut vectors: Vec<GainVec> = vec![[0; LA_MAX_LOOKAHEAD]; n];
        let mut locked = vec![false; n];
        // Keys carry a recency stamp so equal vectors break ties LIFO,
        // like the FM bucket structure.
        let mut trees: [AvlTree<(GainVec, u64, u32)>; 2] = [AvlTree::new(), AvlTree::new()];
        let mut stamp = vec![0u64; n];
        let mut next_stamp = 0u64;
        let mut prefix = PrefixTracker::with_capacity(n);
        let mut moves: Vec<NodeId> = Vec::with_capacity(n);
        let mut mark = vec![0u32; n];
        let mut epoch = 0u32;

        while passes < self.max_passes {
            // Cooperative cancellation at the pass boundary.
            if prop_core::cancel::requested() {
                break;
            }
            passes += 1;
            locked.iter_mut().for_each(|l| *l = false);
            prefix.clear();
            moves.clear();
            trees[0].clear();
            trees[1].clear();
            let mut side_weights = SideWeights::new(graph, partition);
            for v in graph.nodes() {
                vectors[v.index()] = self.vector(graph, partition, &locked, v);
                next_stamp += 1;
                stamp[v.index()] = next_stamp;
                trees[partition.side(v).index()].insert((
                    vectors[v.index()],
                    next_stamp,
                    v.index() as u32,
                ));
            }

            loop {
                // Selection: lexicographically best feasible vector; with
                // size constraints, the first fitting node in descending
                // order per side.
                let counts = [partition.count(Side::A), partition.count(Side::B)];
                let weights = side_weights.as_array();
                let mut best: Option<(GainVec, u64, u32, Side)> = None;
                #[allow(clippy::needless_range_loop)] // si doubles as Side index
                for si in 0..2 {
                    let side = Side::from_index(si);
                    let candidate = if balance.is_weighted() {
                        trees[si]
                            .iter_desc()
                            .find(|&&(_, _, id)| {
                                balance.allows_node_move(
                                    side,
                                    counts,
                                    weights,
                                    graph.node_weight(NodeId::new(id as usize)),
                                )
                            })
                            .copied()
                    } else if balance.allows_move(side, counts[0], counts[1]) {
                        trees[si].max().copied()
                    } else {
                        None
                    };
                    if let Some((vec, st, id)) = candidate {
                        if best.is_none_or(|(bv, bst, bid, _)| (vec, st, id) > (bv, bst, bid)) {
                            best = Some((vec, st, id, side));
                        }
                    }
                }
                let Some((vec, st, id, side)) = best else { break };
                let u = NodeId::new(id as usize);
                trees[side.index()].remove(&(vec, st, id));
                locked[u.index()] = true;
                let immediate = cut.apply_move(graph, partition, u);
                side_weights.apply_move(side, graph.node_weight(u));
                prefix.push(
                    immediate,
                    balance.is_feasible(
                        [partition.count(Side::A), partition.count(Side::B)],
                        side_weights.as_array(),
                    ),
                );
                moves.push(u);

                // Recompute every free neighbor's vector.
                epoch = epoch.wrapping_add(1);
                if epoch == 0 {
                    mark.iter_mut().for_each(|m| *m = u32::MAX);
                    epoch = 1;
                }
                mark[u.index()] = epoch;
                for &net in graph.nets_of(u) {
                    for &x in graph.pins_of(net) {
                        if locked[x.index()] || mark[x.index()] == epoch {
                            continue;
                        }
                        mark[x.index()] = epoch;
                        let fresh = self.vector(graph, partition, &locked, x);
                        if fresh != vectors[x.index()] {
                            let xs = partition.side(x).index();
                            let removed = trees[xs].remove(&(
                                vectors[x.index()],
                                stamp[x.index()],
                                x.index() as u32,
                            ));
                            debug_assert!(removed);
                            next_stamp += 1;
                            stamp[x.index()] = next_stamp;
                            trees[xs].insert((fresh, next_stamp, x.index() as u32));
                            vectors[x.index()] = fresh;
                        }
                    }
                }
            }

            let best = prefix.best();
            let commit = best.map_or(0, |b| b.moves);
            for i in (commit..moves.len()).rev() {
                cut.apply_move(graph, partition, moves[i]);
            }
            if best.map_or(0.0, |b| b.gain) <= 0.0 {
                break;
            }
        }
        ImproveStats {
            passes,
            cut_cost: cut.cut_cost(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_core::example::{figure1, paper_node};
    use prop_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn la3_vectors_match_figure_1a() {
        let fig = figure1();
        let la = La::new(3);
        let locked = vec![false; fig.graph.num_nodes()];
        let v1 = la.vector(&fig.graph, &fig.partition, &locked, paper_node(1));
        let v2 = la.vector(&fig.graph, &fig.partition, &locked, paper_node(2));
        let v3 = la.vector(&fig.graph, &fig.partition, &locked, paper_node(3));
        assert_eq!(&v1[..3], &[2, 0, 0], "node 1");
        assert_eq!(&v2[..3], &[2, 0, 1], "node 2");
        assert_eq!(&v3[..3], &[2, 0, 1], "node 3");
        // LA-3 cannot separate nodes 2 and 3 — the paper's point.
        assert_eq!(&v2[..3], &v3[..3]);
    }

    #[test]
    fn la1_level_equals_fm_gain() {
        let g = generate(&GeneratorConfig::new(40, 48, 160).with_seed(6)).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let part = Bipartition::random(40, &mut rng);
        let cut = CutState::new(&g, &part);
        let la = La::new(4);
        let locked = vec![false; 40];
        for v in g.nodes() {
            let vec = la.vector(&g, &part, &locked, v);
            let fm = cut.move_gain(&g, &part, v);
            assert_eq!(vec[0] as f64, fm, "node {v}");
        }
    }

    #[test]
    fn improves_and_stays_balanced() {
        let g = generate(&GeneratorConfig::new(80, 90, 300).with_seed(13)).unwrap();
        let balance = BalanceConstraint::bisection(80);
        for k in [2, 3] {
            let res = La::new(k).run_multi(&g, balance, 3, 5).unwrap();
            assert!(res.partition.is_balanced(balance), "LA-{k}");
            assert_eq!(res.cut_cost, cut_cost(&g, &res.partition));
        }
    }

    #[test]
    fn names_follow_depth() {
        assert_eq!(La::new(2).name(), "LA-2");
        assert_eq!(La::new(3).name(), "LA-3");
        assert_eq!(La::new(2).lookahead(), 2);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn depth_zero_rejected() {
        let _ = La::new(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn depth_five_rejected() {
        let _ = La::new(5);
    }
}
