//! The coordinator: shards `batch` sweeps across worker daemons.
//!
//! A coordinator is an ordinary daemon (every single-node verb still
//! works, served by its local pool) plus a worker table of remote
//! daemons. One `batch` request expands — via [`crate::batch`] — into a
//! deterministic sub-job list; per-worker dispatcher threads pull
//! sub-jobs from a shared queue and execute each as a plain
//! `submit`/`wait` round-trip against their worker, pushing the stored
//! circuit first (store-to-store, by id) when the worker lacks it.
//!
//! Failure handling is structural, not arrival-ordered, so it cannot
//! perturb results:
//!
//! * a **heartbeat thread** pings every worker on a configurable
//!   interval; a worker that keeps failing past the timeout is marked
//!   lost and receives no new dispatches until a ping succeeds again;
//! * a sub-job whose round-trip fails (connect refused, connection
//!   reset by a SIGKILLed worker, refused submit, failed remote job) is
//!   **requeued** with bounded per-sub-job retries and cancellable
//!   exponential backoff — any live dispatcher picks it up, so work
//!   migrates off a lost worker onto the survivors;
//! * the final merge ([`crate::batch::merge`]) orders results by the
//!   planner's indices, so the batch winner is bit-identical to a
//!   sequential sweep no matter which workers ran what, in what order,
//!   or how many times a sub-job moved.
//!
//! Progress is observable while the batch runs: every state change
//! appends one JSON event to a per-batch log that `watch` connections
//! replay and then follow (`progress` / `result` lines, terminal
//! `done`). Cancellation trips the batch's [`CancelToken`], which stops
//! dispatchers at their next poll and fans out `cancel` verbs to every
//! in-flight remote job.

use crate::batch::{self, BatchRequest, SubJob, SubJobOutcome};
use crate::client::{Client, ConnectRetry};
use crate::json::{self, Json};
use crate::metrics::LatencyHistogram;
use crate::wire::UploadRequest;
use prop_core::CancelToken;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Coordinator configuration: the worker set plus health/retry knobs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterConfig {
    /// Worker daemon addresses (`host:port`).
    pub workers: Vec<String>,
    /// Heartbeat ping interval in milliseconds.
    pub heartbeat_ms: u64,
    /// A worker whose pings keep failing for this long is marked lost.
    pub heartbeat_timeout_ms: u64,
    /// Bounded retries per sub-job before the batch fails.
    pub max_retries: u32,
    /// Base backoff before a rescheduled sub-job re-dispatches;
    /// doubles per attempt (capped), jittered by the connect path.
    pub backoff_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: Vec::new(),
            heartbeat_ms: 500,
            heartbeat_timeout_ms: 2000,
            max_retries: 3,
            backoff_ms: 50,
        }
    }
}

/// One remote worker daemon: address, health, and per-worker metrics.
struct WorkerState {
    addr: String,
    alive: AtomicBool,
    last_ok: Mutex<Instant>,
    submitted: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    ping_failures: AtomicU64,
    uploads: AtomicU64,
    latency: LatencyHistogram,
    /// Circuits this worker is known to hold (pushed by us or seen in a
    /// successful submit). Cleared per id when a worker answers
    /// `unknown_circuit` (e.g. it restarted on an empty store).
    circuits: Mutex<HashSet<String>>,
}

/// Batch-level counters for the `cluster` stats section.
#[derive(Default)]
struct ClusterCounters {
    batches_accepted: AtomicU64,
    batches_completed: AtomicU64,
    batches_failed: AtomicU64,
    batches_cancelled: AtomicU64,
    sub_jobs_dispatched: AtomicU64,
    sub_jobs_rescheduled: AtomicU64,
}

/// One running (or finished) batch: the planned sub-jobs, the work
/// queue dispatchers pull from, collected results, and the append-only
/// event log `watch` connections stream.
pub struct BatchState {
    id: u64,
    spec: BatchRequest,
    jobs: Vec<SubJob>,
    snapshot: Arc<Vec<u8>>,
    token: CancelToken,
    queue: Mutex<VecDeque<usize>>,
    attempts: Mutex<Vec<u32>>,
    results: Mutex<Vec<Option<SubJobOutcome>>>,
    remaining: AtomicUsize,
    inflight: Mutex<HashMap<usize, (String, u64)>>,
    rescheduled: AtomicU64,
    events: Mutex<Vec<Json>>,
    events_cv: Condvar,
    done: AtomicBool,
    finalized: AtomicBool,
    final_view: Mutex<Option<Json>>,
    on_done: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl BatchState {
    fn new(
        id: u64,
        spec: BatchRequest,
        snapshot: Vec<u8>,
        on_done: Box<dyn FnOnce() + Send>,
    ) -> Arc<BatchState> {
        let jobs = spec.expand();
        let n = jobs.len();
        Arc::new(BatchState {
            id,
            spec,
            jobs,
            snapshot: Arc::new(snapshot),
            token: CancelToken::new(),
            queue: Mutex::new((0..n).collect()),
            attempts: Mutex::new(vec![0; n]),
            results: Mutex::new(vec![None; n]),
            remaining: AtomicUsize::new(n),
            inflight: Mutex::new(HashMap::new()),
            rescheduled: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            events_cv: Condvar::new(),
            done: AtomicBool::new(false),
            finalized: AtomicBool::new(false),
            final_view: Mutex::new(None),
            on_done: Mutex::new(Some(on_done)),
        })
    }

    /// Number of planned sub-jobs.
    pub fn sub_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn completed_count(&self) -> usize {
        self.jobs.len() - self.remaining.load(Ordering::Acquire)
    }

    fn emit(&self, event: Json) {
        let mut events = self.events.lock().expect("batch event log lock");
        events.push(event);
        drop(events);
        self.events_cv.notify_all();
    }

    /// Blocks until event `index` exists and returns a copy; `None`
    /// once the batch is terminal and no further event will arrive —
    /// the `watch` stream's read primitive.
    pub fn event(&self, index: usize) -> Option<Json> {
        let mut events = self.events.lock().expect("batch event log lock");
        loop {
            if index < events.len() {
                return Some(events[index].clone());
            }
            if self.done.load(Ordering::Acquire) {
                return None;
            }
            events = self
                .events_cv
                .wait(events)
                .expect("batch event log lock");
        }
    }

    /// The terminal view (the `done` event), once the batch finished.
    pub fn final_view(&self) -> Option<Json> {
        self.final_view
            .lock()
            .expect("batch final view lock")
            .clone()
    }

    /// A point-in-time `status` view: the final view when terminal,
    /// otherwise a running summary.
    pub fn view(&self) -> Json {
        if let Some(view) = self.final_view() {
            return view;
        }
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("job", json::uint(self.id)),
            ("batch", Json::Bool(true)),
            ("phase", json::str("running")),
            ("sub_jobs", json::uint(self.jobs.len() as u64)),
            ("completed", json::uint(self.completed_count() as u64)),
            (
                "rescheduled",
                json::uint(self.rescheduled.load(Ordering::Relaxed)),
            ),
        ])
    }

    /// Blocks until the batch is terminal and returns the final view.
    pub fn wait_view(&self) -> Json {
        let mut events = self.events.lock().expect("batch event log lock");
        while !self.done.load(Ordering::Acquire) {
            events = self
                .events_cv
                .wait(events)
                .expect("batch event log lock");
        }
        drop(events);
        self.final_view().expect("terminal batch has a final view")
    }

    /// Claims the right to finalize; exactly one caller wins.
    fn try_finalize(&self) -> bool {
        !self.finalized.swap(true, Ordering::AcqRel)
    }

    /// Publishes the terminal view, wakes waiters, runs the completion
    /// hook (circuit unpin).
    fn seal(&self, view: Json) {
        // Run the on-done hook (the circuit unpin) before the terminal
        // event becomes observable: a client that saw the batch finish
        // must be able to evict the circuit immediately.
        if let Some(hook) = self.on_done.lock().expect("batch hook lock").take() {
            hook();
        }
        *self.final_view.lock().expect("batch final view lock") = Some(view.clone());
        self.done.store(true, Ordering::Release);
        self.emit(view);
        // emit() notifies the condvar, waking watchers and waiters.
    }
}

struct Inner {
    config: ClusterConfig,
    workers: Vec<Arc<WorkerState>>,
    batches: Mutex<HashMap<u64, Arc<BatchState>>>,
    counters: ClusterCounters,
    stop: CancelToken,
}

/// Handle to the coordinator state: shared by the server's request
/// handlers, the heartbeat thread, and every batch dispatcher.
#[derive(Clone)]
pub struct Coordinator {
    inner: Arc<Inner>,
}

impl Coordinator {
    /// Builds the worker table and starts the heartbeat thread.
    pub fn new(config: ClusterConfig) -> Coordinator {
        let workers = config
            .workers
            .iter()
            .map(|addr| {
                Arc::new(WorkerState {
                    addr: addr.clone(),
                    // Optimistic until the heartbeat learns otherwise, so
                    // batches submitted right after start dispatch
                    // immediately; a dead worker's dispatches fail fast
                    // and reschedule.
                    alive: AtomicBool::new(true),
                    last_ok: Mutex::new(Instant::now()),
                    submitted: AtomicU64::new(0),
                    completed: AtomicU64::new(0),
                    retries: AtomicU64::new(0),
                    ping_failures: AtomicU64::new(0),
                    uploads: AtomicU64::new(0),
                    latency: LatencyHistogram::new(),
                    circuits: Mutex::new(HashSet::new()),
                })
            })
            .collect();
        let inner = Arc::new(Inner {
            config,
            workers,
            batches: Mutex::new(HashMap::new()),
            counters: ClusterCounters::default(),
            stop: CancelToken::new(),
        });
        {
            let inner = Arc::clone(&inner);
            let _ = thread::Builder::new()
                .name("prop-cluster-heartbeat".into())
                .spawn(move || heartbeat_loop(&inner));
        }
        Coordinator { inner }
    }

    /// Number of configured workers.
    pub fn worker_count(&self) -> usize {
        self.inner.workers.len()
    }

    /// Stops the heartbeat and every dispatcher (in-flight batches
    /// finalize as cancelled). Called on daemon shutdown.
    pub fn stop(&self) {
        self.inner.stop.cancel();
        let batches: Vec<Arc<BatchState>> = {
            let map = self.inner.batches.lock().expect("batch table lock");
            map.values().cloned().collect()
        };
        for batch in batches {
            if !batch.done.load(Ordering::Acquire) {
                batch.token.cancel();
            }
        }
    }

    /// Registers a batch under `id` (reserved from the job-id space)
    /// and spawns its per-worker dispatchers. `snapshot` is the
    /// circuit's `.hgb` image for store-to-store pushes; `on_done` runs
    /// exactly once when the batch reaches its terminal state (the
    /// server unpins the circuit there). Returns the sub-job count.
    pub fn submit_batch(
        &self,
        id: u64,
        spec: BatchRequest,
        snapshot: Vec<u8>,
        on_done: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let batch = BatchState::new(id, spec, snapshot, on_done);
        let n = batch.sub_jobs();
        self.inner
            .batches
            .lock()
            .expect("batch table lock")
            .insert(id, Arc::clone(&batch));
        self.inner
            .counters
            .batches_accepted
            .fetch_add(1, Ordering::Relaxed);
        for (w, worker) in self.inner.workers.iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let batch = Arc::clone(&batch);
            let worker = Arc::clone(worker);
            let _ = thread::Builder::new()
                .name(format!("prop-batch-{id}-w{w}"))
                .spawn(move || dispatcher(&inner, &batch, &worker));
        }
        n
    }

    /// The batch registered under `id`, if any.
    pub fn batch(&self, id: u64) -> Option<Arc<BatchState>> {
        self.inner
            .batches
            .lock()
            .expect("batch table lock")
            .get(&id)
            .cloned()
    }

    /// Cancels batch `id`: trips its token (dispatchers stop at their
    /// next poll) and fans `cancel` out to every in-flight remote job.
    /// `false` when no batch has this id (plain jobs fall through to
    /// the job table).
    pub fn cancel(&self, id: u64) -> bool {
        let Some(batch) = self.batch(id) else {
            return false;
        };
        batch.token.cancel();
        cancel_inflight(&batch);
        true
    }

    /// The `cluster` section of the `stats` response.
    pub fn stats_json(&self) -> Json {
        let workers: Vec<Json> = self
            .inner
            .workers
            .iter()
            .map(|w| {
                json::obj(vec![
                    ("addr", json::str(&w.addr)),
                    ("alive", Json::Bool(w.alive.load(Ordering::Relaxed))),
                    ("submitted", json::uint(w.submitted.load(Ordering::Relaxed))),
                    ("completed", json::uint(w.completed.load(Ordering::Relaxed))),
                    ("retries", json::uint(w.retries.load(Ordering::Relaxed))),
                    (
                        "ping_failures",
                        json::uint(w.ping_failures.load(Ordering::Relaxed)),
                    ),
                    ("uploads", json::uint(w.uploads.load(Ordering::Relaxed))),
                    ("latency", w.latency.to_json()),
                ])
            })
            .collect();
        let c = &self.inner.counters;
        let running = {
            let map = self.inner.batches.lock().expect("batch table lock");
            map.values()
                .filter(|b| !b.done.load(Ordering::Acquire))
                .count()
        };
        json::obj(vec![
            ("workers", Json::Arr(workers)),
            (
                "batches",
                json::obj(vec![
                    ("accepted", json::uint(c.batches_accepted.load(Ordering::Relaxed))),
                    (
                        "completed",
                        json::uint(c.batches_completed.load(Ordering::Relaxed)),
                    ),
                    ("failed", json::uint(c.batches_failed.load(Ordering::Relaxed))),
                    (
                        "cancelled",
                        json::uint(c.batches_cancelled.load(Ordering::Relaxed)),
                    ),
                    ("running", json::uint(running as u64)),
                ]),
            ),
            (
                "sub_jobs",
                json::obj(vec![
                    (
                        "dispatched",
                        json::uint(c.sub_jobs_dispatched.load(Ordering::Relaxed)),
                    ),
                    (
                        "rescheduled",
                        json::uint(c.sub_jobs_rescheduled.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ])
    }
}

/// Pings every worker on the configured interval, flipping `alive`.
fn heartbeat_loop(inner: &Arc<Inner>) {
    let interval = Duration::from_millis(inner.config.heartbeat_ms.max(10));
    let timeout = Duration::from_millis(inner.config.heartbeat_timeout_ms.max(1));
    loop {
        for worker in &inner.workers {
            if inner.stop.is_cancelled() {
                return;
            }
            match ping_worker(&worker.addr, interval.max(Duration::from_millis(100))) {
                Ok(()) => {
                    *worker.last_ok.lock().expect("worker health lock") = Instant::now();
                    worker.alive.store(true, Ordering::Relaxed);
                }
                Err(()) => {
                    worker.ping_failures.fetch_add(1, Ordering::Relaxed);
                    let last_ok = *worker.last_ok.lock().expect("worker health lock");
                    if last_ok.elapsed() >= timeout {
                        worker.alive.store(false, Ordering::Relaxed);
                    }
                }
            }
        }
        if inner.stop.sleep(interval) {
            return;
        }
    }
}

/// One bounded-time `ping` round-trip (its own connection, so a wedged
/// worker cannot stall the heartbeat thread past the deadline).
fn ping_worker(addr: &str, deadline: Duration) -> Result<(), ()> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|_| ())?
        .next()
        .ok_or(())?;
    let stream = TcpStream::connect_timeout(&sock, deadline).map_err(|_| ())?;
    stream.set_read_timeout(Some(deadline)).map_err(|_| ())?;
    stream.set_write_timeout(Some(deadline)).map_err(|_| ())?;
    let mut stream = stream;
    use std::io::{BufRead, BufReader, Write};
    stream.write_all(b"ping\n").map_err(|_| ())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|_| ())?;
    // A bogus heartbeat reply (wrong shape, error object, empty line)
    // counts as a failed ping, not a panic.
    match json::parse(line.trim_end()) {
        Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => Ok(()),
        _ => Err(()),
    }
}

/// One worker's dispatch loop for one batch: claim, execute, requeue on
/// failure, finalize when the batch completes, fails, or is cancelled.
fn dispatcher(inner: &Arc<Inner>, batch: &Arc<BatchState>, worker: &Arc<WorkerState>) {
    let cfg = &inner.config;
    let idle = Duration::from_millis(20);
    loop {
        if batch.done.load(Ordering::Acquire) {
            return;
        }
        if batch.token.is_cancelled() || inner.stop.is_cancelled() {
            finalize_cancelled(inner, batch);
            return;
        }
        if !worker.alive.load(Ordering::Relaxed) {
            batch
                .token
                .sleep(Duration::from_millis(cfg.heartbeat_ms.clamp(20, 200)));
            continue;
        }
        let claimed = batch.queue.lock().expect("batch queue lock").pop_front();
        let Some(idx) = claimed else {
            if batch.remaining.load(Ordering::Acquire) == 0 {
                return; // the completing dispatcher already finalized
            }
            batch.token.sleep(idle);
            continue;
        };
        let job = &batch.jobs[idx];
        worker.submitted.fetch_add(1, Ordering::Relaxed);
        inner
            .counters
            .sub_jobs_dispatched
            .fetch_add(1, Ordering::Relaxed);
        batch.emit(json::obj(vec![
            ("ok", Json::Bool(true)),
            ("event", json::str("progress")),
            ("job", json::uint(batch.id)),
            ("sub_job", json::uint(idx as u64)),
            ("of", json::uint(batch.jobs.len() as u64)),
            ("state", json::str("dispatched")),
            ("engine", json::str(&job.request.engine)),
            ("seed", json::uint(job.request.seed)),
            ("runs", json::uint(job.request.runs as u64)),
            ("worker", json::str(&worker.addr)),
        ]));
        let started = Instant::now();
        match run_sub_job(inner, batch, worker, idx) {
            Ok(outcome) => {
                let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                worker.completed.fetch_add(1, Ordering::Relaxed);
                worker.latency.record(wall_ms);
                batch.emit(json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("event", json::str("result")),
                    ("job", json::uint(batch.id)),
                    ("sub_job", json::uint(idx as u64)),
                    ("of", json::uint(batch.jobs.len() as u64)),
                    ("engine", json::str(&job.request.engine)),
                    ("r1", json::num(job.request.r1)),
                    ("r2", json::num(job.request.r2)),
                    ("seed", json::uint(job.request.seed)),
                    ("cut", json::num(outcome.cut)),
                    ("worker", json::str(&worker.addr)),
                    ("wall_ms", json::uint(wall_ms)),
                ]));
                batch.results.lock().expect("batch results lock")[idx] = Some(outcome);
                if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    finalize_completed(inner, batch);
                    return;
                }
            }
            Err(message) => {
                batch.inflight.lock().expect("batch inflight lock").remove(&idx);
                if batch.token.is_cancelled() || inner.stop.is_cancelled() {
                    finalize_cancelled(inner, batch);
                    return;
                }
                worker.retries.fetch_add(1, Ordering::Relaxed);
                inner
                    .counters
                    .sub_jobs_rescheduled
                    .fetch_add(1, Ordering::Relaxed);
                batch.rescheduled.fetch_add(1, Ordering::Relaxed);
                let attempt = {
                    let mut attempts = batch.attempts.lock().expect("batch attempts lock");
                    attempts[idx] += 1;
                    attempts[idx]
                };
                if attempt > cfg.max_retries {
                    finalize_failed(inner, batch, idx, &message);
                    return;
                }
                batch.emit(json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("event", json::str("progress")),
                    ("job", json::uint(batch.id)),
                    ("sub_job", json::uint(idx as u64)),
                    ("state", json::str("rescheduled")),
                    ("attempt", json::uint(u64::from(attempt))),
                    ("worker", json::str(&worker.addr)),
                    ("error", json::str(&message)),
                ]));
                batch
                    .queue
                    .lock()
                    .expect("batch queue lock")
                    .push_back(idx);
                let backoff = cfg.backoff_ms.max(1) << u64::from((attempt - 1).min(5));
                batch.token.sleep(Duration::from_millis(backoff));
            }
        }
    }
}

/// Executes sub-job `idx` on `worker`: connect (bounded retry), push
/// the circuit if the worker lacks it, submit without wait (to learn
/// the remote id for cancel fan-out), then wait for the result.
fn run_sub_job(
    inner: &Arc<Inner>,
    batch: &Arc<BatchState>,
    worker: &Arc<WorkerState>,
    idx: usize,
) -> Result<SubJobOutcome, String> {
    let retry = ConnectRetry {
        attempts: 2,
        base_delay_ms: inner.config.backoff_ms.max(1),
    };
    let mut client = Client::connect_retry(&worker.addr, &retry).map_err(|e| e.to_string())?;
    let circuit = &batch.spec.circuit_id;
    let known = worker
        .circuits
        .lock()
        .expect("worker circuit set lock")
        .contains(circuit);
    if !known {
        push_circuit(&mut client, worker, circuit, &batch.snapshot)?;
    }
    let mut request = batch.jobs[idx].request.clone();
    request.wait = false;
    let mut resp = client.submit(&request).map_err(|e| e.to_string())?;
    if resp.get("error").and_then(Json::as_str) == Some("unknown_circuit") {
        // The worker lost its store (restart, eviction): re-push once.
        worker
            .circuits
            .lock()
            .expect("worker circuit set lock")
            .remove(circuit);
        push_circuit(&mut client, worker, circuit, &batch.snapshot)?;
        resp = client.submit(&request).map_err(|e| e.to_string())?;
    }
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("submit refused: {}", resp.render()));
    }
    let remote = resp
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| "submit response lacks a job id".to_string())?;
    batch
        .inflight
        .lock()
        .expect("batch inflight lock")
        .insert(idx, (worker.addr.clone(), remote));
    let view = client.wait(remote);
    batch.inflight.lock().expect("batch inflight lock").remove(&idx);
    parse_outcome(&view.map_err(|e| e.to_string())?)
}

/// Ships the batch's `.hgb` snapshot to `worker` under the circuit id.
fn push_circuit(
    client: &mut Client,
    worker: &Arc<WorkerState>,
    circuit: &str,
    snapshot: &Arc<Vec<u8>>,
) -> Result<(), String> {
    let upload = UploadRequest {
        circuit: circuit.to_string(),
        fmt: "hgb".into(),
        payload: Some(snapshot.as_ref().clone()),
        path: None,
    };
    let resp = client.upload(&upload).map_err(|e| e.to_string())?;
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("circuit push refused: {}", resp.render()));
    }
    worker.uploads.fetch_add(1, Ordering::Relaxed);
    worker
        .circuits
        .lock()
        .expect("worker circuit set lock")
        .insert(circuit.to_string());
    Ok(())
}

/// Parses a worker's terminal job view into a [`SubJobOutcome`].
fn parse_outcome(view: &Json) -> Result<SubJobOutcome, String> {
    if view.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("remote job errored: {}", view.render()));
    }
    let status = view.get("status").and_then(Json::as_str).unwrap_or("");
    if status != "completed" {
        let message = view.get("message").and_then(Json::as_str).unwrap_or("");
        return Err(format!("remote job {status}: {message}"));
    }
    let field = |key: &str| -> Result<&Json, String> {
        view.get(key)
            .ok_or_else(|| format!("remote result lacks {key:?}"))
    };
    let cut = field("cut")?
        .as_f64()
        .ok_or_else(|| "bad cut in remote result".to_string())?;
    let sides = field("sides")?
        .as_arr()
        .filter(|a| a.len() == 2)
        .and_then(|a| Some((a[0].as_u64()? as usize, a[1].as_u64()? as usize)))
        .ok_or_else(|| "bad sides in remote result".to_string())?;
    let passes = field("passes")?
        .as_u64()
        .ok_or_else(|| "bad passes in remote result".to_string())? as usize;
    let run_cuts = field("run_cuts")?
        .as_arr()
        .map(|a| a.iter().filter_map(Json::as_f64).collect::<Vec<f64>>())
        .ok_or_else(|| "bad run_cuts in remote result".to_string())?;
    let assignment_hash = field("assignment_hash")?
        .as_str()
        .and_then(json::parse_hex64)
        .ok_or_else(|| "bad assignment_hash in remote result".to_string())?;
    Ok(SubJobOutcome {
        cut,
        sides,
        passes,
        run_cuts,
        assignment_hash,
    })
}

/// Fans `cancel` out to every in-flight remote job (best effort: a
/// dead worker's cancel just fails its fast, bounded connect).
fn cancel_inflight(batch: &Arc<BatchState>) {
    let inflight: Vec<(String, u64)> = {
        let map = batch.inflight.lock().expect("batch inflight lock");
        map.values().cloned().collect()
    };
    for (addr, remote) in inflight {
        if let Ok(mut client) = Client::connect_retry(&addr, &ConnectRetry::once()) {
            let _ = client.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = client.cancel(remote);
        }
    }
}

fn finalize_completed(inner: &Arc<Inner>, batch: &Arc<BatchState>) {
    if !batch.try_finalize() {
        return;
    }
    let outcomes: Vec<SubJobOutcome> = {
        let results = batch.results.lock().expect("batch results lock");
        results
            .iter()
            .map(|r| r.clone().expect("completed batch has every outcome"))
            .collect()
    };
    let merged = batch::merge(&batch.spec, &batch.jobs, &outcomes);
    let groups: Vec<Json> = merged
        .groups
        .iter()
        .map(|g| {
            json::obj(vec![
                ("engine", json::str(&g.engine)),
                ("r1", json::num(g.r1)),
                ("r2", json::num(g.r2)),
                ("cut", json::num(g.cut)),
                (
                    "sides",
                    Json::Arr(vec![
                        json::uint(g.sides.0 as u64),
                        json::uint(g.sides.1 as u64),
                    ]),
                ),
                ("passes", json::uint(g.passes as u64)),
                (
                    "run_cuts",
                    Json::Arr(g.run_cuts.iter().map(|&c| json::num(c)).collect()),
                ),
                ("assignment_hash", json::hex64(g.assignment_hash)),
            ])
        })
        .collect();
    let w = merged.winner();
    let view = json::obj(vec![
        ("ok", Json::Bool(true)),
        ("event", json::str("done")),
        ("job", json::uint(batch.id)),
        ("batch", Json::Bool(true)),
        ("phase", json::str("done")),
        ("status", json::str("completed")),
        ("engine", json::str(&w.engine)),
        ("r1", json::num(w.r1)),
        ("r2", json::num(w.r2)),
        ("cut", json::num(w.cut)),
        (
            "sides",
            Json::Arr(vec![
                json::uint(w.sides.0 as u64),
                json::uint(w.sides.1 as u64),
            ]),
        ),
        ("passes", json::uint(w.passes as u64)),
        (
            "run_cuts",
            Json::Arr(w.run_cuts.iter().map(|&c| json::num(c)).collect()),
        ),
        ("assignment_hash", json::hex64(w.assignment_hash)),
        ("sub_jobs", json::uint(batch.jobs.len() as u64)),
        (
            "rescheduled",
            json::uint(batch.rescheduled.load(Ordering::Relaxed)),
        ),
        ("groups", Json::Arr(groups)),
    ]);
    inner
        .counters
        .batches_completed
        .fetch_add(1, Ordering::Relaxed);
    batch.seal(view);
}

fn finalize_failed(inner: &Arc<Inner>, batch: &Arc<BatchState>, idx: usize, message: &str) {
    if !batch.try_finalize() {
        return;
    }
    // Stop the other dispatchers and any still-running remote work.
    batch.token.cancel();
    cancel_inflight(batch);
    inner
        .counters
        .batches_failed
        .fetch_add(1, Ordering::Relaxed);
    batch.seal(json::obj(vec![
        ("ok", Json::Bool(true)),
        ("event", json::str("done")),
        ("job", json::uint(batch.id)),
        ("batch", Json::Bool(true)),
        ("phase", json::str("done")),
        ("status", json::str("failed")),
        ("sub_job", json::uint(idx as u64)),
        ("message", json::str(message)),
        ("sub_jobs", json::uint(batch.jobs.len() as u64)),
        ("completed", json::uint(batch.completed_count() as u64)),
        (
            "rescheduled",
            json::uint(batch.rescheduled.load(Ordering::Relaxed)),
        ),
    ]));
}

fn finalize_cancelled(inner: &Arc<Inner>, batch: &Arc<BatchState>) {
    if !batch.try_finalize() {
        return;
    }
    cancel_inflight(batch);
    inner
        .counters
        .batches_cancelled
        .fetch_add(1, Ordering::Relaxed);
    batch.seal(json::obj(vec![
        ("ok", Json::Bool(true)),
        ("event", json::str("done")),
        ("job", json::uint(batch.id)),
        ("batch", Json::Bool(true)),
        ("phase", json::str("done")),
        ("status", json::str("cancelled")),
        ("sub_jobs", json::uint(batch.jobs.len() as u64)),
        ("completed", json::uint(batch.completed_count() as u64)),
        (
            "rescheduled",
            json::uint(batch.rescheduled.load(Ordering::Relaxed)),
        ),
    ]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_event_log_blocks_and_replays() {
        let batch = BatchState::new(
            7,
            BatchRequest {
                circuit_id: "c".into(),
                runs: 2,
                ..BatchRequest::default()
            },
            Vec::new(),
            Box::new(|| {}),
        );
        assert_eq!(batch.sub_jobs(), 2);
        batch.emit(json::obj(vec![("event", json::str("progress"))]));
        assert!(batch.event(0).is_some());
        // A watcher blocked on a future event wakes when it arrives.
        let waiter = {
            let batch = Arc::clone(&batch);
            thread::spawn(move || batch.event(1))
        };
        thread::sleep(Duration::from_millis(20));
        batch.emit(json::obj(vec![("event", json::str("result"))]));
        assert!(waiter.join().unwrap().is_some());
        // After the terminal seal, reads past the end return None.
        batch.finalized.store(true, Ordering::Release);
        batch.seal(json::obj(vec![("event", json::str("done"))]));
        assert!(batch.event(2).is_some());
        assert!(batch.event(3).is_none());
    }

    #[test]
    fn on_done_hook_runs_exactly_once() {
        let count = Arc::new(AtomicU64::new(0));
        let hook_count = Arc::clone(&count);
        let batch = BatchState::new(
            1,
            BatchRequest {
                circuit_id: "c".into(),
                ..BatchRequest::default()
            },
            Vec::new(),
            Box::new(move || {
                hook_count.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(batch.try_finalize());
        assert!(!batch.try_finalize(), "finalize claims once");
        batch.seal(json::obj(vec![("event", json::str("done"))]));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert!(batch.final_view().is_some());
        assert_eq!(batch.wait_view().get("event").and_then(Json::as_str), Some("done"));
    }

    #[test]
    fn ping_worker_rejects_dead_and_bogus_peers() {
        // Dead peer: bind-then-drop to find a free port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert!(ping_worker(&addr, Duration::from_millis(200)).is_err());

        // Bogus peer: answers pings with garbage — a failed ping, not
        // a coordinator panic.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let bogus = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            use std::io::{Read, Write};
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 16];
            let _ = s.read(&mut buf);
            let _ = s.write_all(b"not json at all\n");
        });
        assert!(ping_worker(&bogus, Duration::from_millis(500)).is_err());
        server.join().unwrap();
    }

    #[test]
    fn coordinator_tracks_worker_health() {
        // One dead worker: heartbeat marks it lost after the timeout.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let coordinator = Coordinator::new(ClusterConfig {
            workers: vec![addr.clone()],
            heartbeat_ms: 20,
            heartbeat_timeout_ms: 60,
            ..ClusterConfig::default()
        });
        assert_eq!(coordinator.worker_count(), 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = coordinator.stats_json();
            let workers = stats.get("workers").and_then(Json::as_arr).unwrap();
            if workers[0].get("alive").and_then(Json::as_bool) == Some(false) {
                assert!(
                    workers[0]
                        .get("ping_failures")
                        .and_then(Json::as_u64)
                        .unwrap()
                        > 0
                );
                break;
            }
            assert!(Instant::now() < deadline, "worker never marked lost");
            thread::sleep(Duration::from_millis(10));
        }
        coordinator.stop();
    }
}
