//! Job lifecycle bookkeeping shared between connection handlers and the
//! worker pool.
//!
//! A job moves `Queued → Running → Done`; the terminal state carries a
//! [`JobOutcome`]. The table owns each job's [`CancelToken`], so both the
//! `cancel` verb (any connection) and the worker's deadline arming act on
//! the same token the engine polls at pass boundaries.
//!
//! Completed entries are retained for the daemon's lifetime so `status`
//! and `wait` stay answerable after completion; the table grows with the
//! number of *accepted* jobs, which admission control already bounds per
//! unit time.

use crate::wire::SubmitRequest;
use prop_core::CancelToken;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Terminal; a [`JobOutcome`] is available.
    Done,
}

impl JobPhase {
    /// Wire name (`queued` / `running` / `done`).
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
        }
    }
}

/// How a job ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Ran to completion.
    Completed,
    /// Stopped early by an explicit `cancel`; the outcome still carries
    /// the best feasible partition found before the stop.
    Cancelled,
    /// Stopped early by its `timeout_ms` deadline; like a cancel, the
    /// partial result is feasible and usable.
    TimedOut,
    /// The engine returned an error (or a worker panic was contained).
    Failed,
}

impl JobStatus {
    /// Wire name (`completed` / `cancelled` / `timed_out` / `failed`).
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Failed => "failed",
        }
    }
}

/// The terminal record of a job.
#[derive(Clone, PartialEq, Debug)]
pub struct JobOutcome {
    /// How the job ended.
    pub status: JobStatus,
    /// Failure message when `status == Failed`.
    pub error: Option<String>,
    /// Best cut cost found (absent on failure).
    pub cut: Option<f64>,
    /// Side-A / side-B node counts.
    pub sides: (usize, usize),
    /// Total engine passes across runs.
    pub passes: usize,
    /// Final cut of each completed run, in run order (the seed
    /// trajectory: run `r` used `seed + r`).
    pub run_cuts: Vec<f64>,
    /// FNV-1a 64 hash of the node→side assignment.
    pub assignment_hash: Option<u64>,
    /// Multi-start runs actually started before any early stop.
    pub started_runs: usize,
    /// Worker wall-clock for the job, in milliseconds.
    pub wall_ms: u64,
    /// Part count of a k-way job; `None` for the classic bipartition
    /// path (which reports through `sides`).
    pub k: Option<u32>,
    /// Per-part node weights of a k-way job, in part order.
    pub part_weights: Vec<f64>,
    /// Connectivity (λ − 1) objective of a k-way job; `cut` carries the
    /// hyperedge-cut objective.
    pub connectivity: Option<f64>,
}

impl JobOutcome {
    /// A `Failed` outcome carrying only an error message.
    pub fn failed(message: impl Into<String>, wall_ms: u64) -> Self {
        JobOutcome {
            status: JobStatus::Failed,
            error: Some(message.into()),
            cut: None,
            sides: (0, 0),
            passes: 0,
            run_cuts: Vec::new(),
            assignment_hash: None,
            started_runs: 0,
            wall_ms,
            k: None,
            part_weights: Vec::new(),
            connectivity: None,
        }
    }
}

/// A point-in-time view of one job, as returned to clients.
#[derive(Clone, PartialEq, Debug)]
pub struct JobView {
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Whether an explicit `cancel` was requested.
    pub cancel_requested: bool,
    /// The terminal record, once `phase == Done`.
    pub outcome: Option<JobOutcome>,
}

struct JobEntry {
    token: CancelToken,
    cancel_requested: bool,
    phase: JobPhase,
    work: Option<SubmitRequest>,
    outcome: Option<JobOutcome>,
}

/// The shared job registry: id allocation, work hand-off, cancellation,
/// and completion signalling.
pub struct JobTable {
    state: Mutex<Inner>,
    done: Condvar,
}

struct Inner {
    next_id: u64,
    jobs: HashMap<u64, JobEntry>,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> Self {
        JobTable {
            state: Mutex::new(Inner {
                next_id: 1,
                jobs: HashMap::new(),
            }),
            done: Condvar::new(),
        }
    }

    /// Registers a new queued job and returns its id.
    pub fn insert(&self, work: SubmitRequest) -> u64 {
        let mut state = self.state.lock().expect("job table lock");
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobEntry {
                token: CancelToken::new(),
                cancel_requested: false,
                phase: JobPhase::Queued,
                work: Some(work),
                outcome: None,
            },
        );
        id
    }

    /// Allocates an id from the shared namespace without inserting an
    /// entry. The coordinator's batches live in their own table but
    /// draw ids here, so `status`/`wait`/`cancel`/`watch` address jobs
    /// and batches through one number space with no collisions.
    pub fn reserve(&self) -> u64 {
        let mut state = self.state.lock().expect("job table lock");
        let id = state.next_id;
        state.next_id += 1;
        id
    }

    /// Claims a queued job for a worker: marks it `Running` and hands
    /// back its payload plus the cancellation token to install. `None`
    /// if the id is unknown or already claimed.
    pub fn take_work(&self, id: u64) -> Option<(SubmitRequest, CancelToken)> {
        let mut state = self.state.lock().expect("job table lock");
        let entry = state.jobs.get_mut(&id)?;
        let work = entry.work.take()?;
        entry.phase = JobPhase::Running;
        Some((work, entry.token.clone()))
    }

    /// Records a job's terminal outcome and wakes `wait`ers.
    pub fn finish(&self, id: u64, outcome: JobOutcome) {
        let mut state = self.state.lock().expect("job table lock");
        if let Some(entry) = state.jobs.get_mut(&id) {
            entry.phase = JobPhase::Done;
            entry.outcome = Some(outcome);
        }
        drop(state);
        self.done.notify_all();
    }

    /// Removes a job that was never admitted to the queue (its submit
    /// was rejected), so rejected bursts don't grow the table.
    pub fn forget(&self, id: u64) {
        let mut state = self.state.lock().expect("job table lock");
        state.jobs.remove(&id);
    }

    /// Trips the job's cancellation token. Returns `false` for unknown
    /// ids; `true` otherwise (idempotent, including on finished jobs).
    pub fn cancel(&self, id: u64) -> bool {
        let mut state = self.state.lock().expect("job table lock");
        match state.jobs.get_mut(&id) {
            Some(entry) => {
                entry.cancel_requested = true;
                entry.token.cancel();
                true
            }
            None => false,
        }
    }

    /// Whether an explicit `cancel` hit this job (distinguishes a
    /// tripped token's `Cancelled` from a deadline's `TimedOut`).
    pub fn cancel_requested(&self, id: u64) -> bool {
        let state = self.state.lock().expect("job table lock");
        state.jobs.get(&id).is_some_and(|e| e.cancel_requested)
    }

    /// A point-in-time view of the job; `None` for unknown ids.
    pub fn view(&self, id: u64) -> Option<JobView> {
        let state = self.state.lock().expect("job table lock");
        state.jobs.get(&id).map(|e| JobView {
            phase: e.phase,
            cancel_requested: e.cancel_requested,
            outcome: e.outcome.clone(),
        })
    }

    /// Blocks until the job is `Done` and returns its final view;
    /// `None` for unknown ids.
    pub fn wait(&self, id: u64) -> Option<JobView> {
        let mut state = self.state.lock().expect("job table lock");
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(e) if e.phase == JobPhase::Done => {
                    return Some(JobView {
                        phase: e.phase,
                        cancel_requested: e.cancel_requested,
                        outcome: e.outcome.clone(),
                    })
                }
                Some(_) => state = self.done.wait(state).expect("job table lock"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn submit() -> SubmitRequest {
        SubmitRequest {
            payload: "2 2\n1 2\n1 2\n".into(),
            ..SubmitRequest::default()
        }
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let table = JobTable::new();
        let id = table.insert(submit());
        assert_eq!(table.view(id).unwrap().phase, JobPhase::Queued);

        let (work, token) = table.take_work(id).unwrap();
        assert_eq!(work, submit());
        assert!(!token.is_cancelled());
        assert_eq!(table.view(id).unwrap().phase, JobPhase::Running);
        // A second claim finds no payload.
        assert!(table.take_work(id).is_none());

        table.finish(id, JobOutcome::failed("x", 1));
        let view = table.view(id).unwrap();
        assert_eq!(view.phase, JobPhase::Done);
        assert_eq!(view.outcome.unwrap().status, JobStatus::Failed);
    }

    #[test]
    fn cancel_trips_the_worker_visible_token() {
        let table = JobTable::new();
        let id = table.insert(submit());
        let (_, token) = table.take_work(id).unwrap();
        assert!(table.cancel(id));
        assert!(token.is_cancelled());
        assert!(table.cancel_requested(id));
        assert!(!table.cancel(999));
    }

    #[test]
    fn wait_blocks_until_finish() {
        let table = Arc::new(JobTable::new());
        let id = table.insert(submit());
        let waiter = {
            let table = Arc::clone(&table);
            thread::spawn(move || table.wait(id))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        table.finish(id, JobOutcome::failed("done", 3));
        let view = waiter.join().unwrap().unwrap();
        assert_eq!(view.phase, JobPhase::Done);
        assert_eq!(view.outcome.unwrap().wall_ms, 3);
        assert_eq!(table.wait(424_242), None);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let table = JobTable::new();
        let a = table.insert(submit());
        let b = table.insert(submit());
        assert!(b > a);
        // Reserved ids share the namespace but own no entry.
        let r = table.reserve();
        assert!(r > b);
        assert!(table.view(r).is_none());
        assert!(table.insert(submit()) > r);
    }
}
