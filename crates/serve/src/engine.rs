//! Engine dispatch for the daemon's workers.
//!
//! The configurations here mirror `prop-cli`'s `run_method` exactly, and
//! every engine — the multilevel V-cycle included — runs through the
//! cancellable multi-start harness with the
//! [`ParallelPolicy::Sequential`] policy, which the harness guarantees
//! is bit-identical to `run_multi` / `run_multi_parallel` when the token
//! never trips. A result fetched through the daemon therefore matches a
//! direct library call byte for byte (the round-trip test pins this).

use prop_core::{
    partition_kway_cancellable, BalanceConstraint, CancelToken, KwayConfig, KwayReport,
    MultiRunReport, ParallelPolicy, PartitionError, Partitioner, Prop, PropConfig, Side,
};
use prop_fm::{FmBucket, FmTree};
use prop_multilevel::{Multilevel, MultilevelConfig};
use prop_netlist::{format, Hypergraph};

/// The engines the daemon serves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// PROP with the calibrated configuration (the default).
    Prop,
    /// PROP with the paper's published constants.
    PropPaper,
    /// Bucket-list FM.
    Fm,
    /// Tree-ordered FM.
    FmTree,
    /// The multilevel V-cycle engine (one V-cycle per multi-start run).
    Ml,
}

/// Every engine, in wire/metrics order.
pub const ALL_ENGINES: [EngineKind; 5] = [
    EngineKind::Prop,
    EngineKind::PropPaper,
    EngineKind::Fm,
    EngineKind::FmTree,
    EngineKind::Ml,
];

impl EngineKind {
    /// Parses a wire engine name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "prop" => Some(EngineKind::Prop),
            "prop-paper" => Some(EngineKind::PropPaper),
            "fm" => Some(EngineKind::Fm),
            "fm-tree" => Some(EngineKind::FmTree),
            "ml" => Some(EngineKind::Ml),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Prop => "prop",
            EngineKind::PropPaper => "prop-paper",
            EngineKind::Fm => "fm",
            EngineKind::FmTree => "fm-tree",
            EngineKind::Ml => "ml",
        }
    }

    /// Dense index into per-engine metric arrays.
    pub fn index(self) -> usize {
        match self {
            EngineKind::Prop => 0,
            EngineKind::PropPaper => 1,
            EngineKind::Fm => 2,
            EngineKind::FmTree => 3,
            EngineKind::Ml => 4,
        }
    }
}

/// Parses a submitted netlist payload (`hgr` or `netd`).
///
/// # Errors
///
/// Returns the parser's message for malformed payloads and an
/// explanatory message for unknown format names.
pub fn parse_payload(fmt: &str, payload: &str) -> Result<Hypergraph, String> {
    match fmt {
        "hgr" => format::parse_hgr(payload).map_err(|e| e.to_string()),
        "netd" => format::parse_netd(payload).map_err(|e| e.to_string()),
        other => Err(format!("unknown netlist format {other:?}")),
    }
}

/// Runs `kind` on `graph` under `token` with the default multilevel
/// knobs; see [`execute_with`].
///
/// # Errors
///
/// Propagates [`PartitionError`] from the engine.
pub fn execute(
    kind: EngineKind,
    graph: &Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    seed: u64,
    token: &CancelToken,
) -> Result<MultiRunReport, PartitionError> {
    execute_with(kind, graph, balance, runs, seed, token, MultilevelConfig::default())
}

/// Runs `kind` on `graph` under `token`, reporting whether the execution
/// completed or stopped early.
///
/// Every engine uses the cancellable sequential multi-start harness. For
/// the `ml` engine each run is one V-cycle, built from `ml` with its
/// engine seed set to `seed` (matching `prop-cli`); the V-cycle polls the
/// token at every level boundary, so a cancelled run still surfaces a
/// feasible partial partition.
///
/// # Errors
///
/// Propagates [`PartitionError`] from the engine.
pub fn execute_with(
    kind: EngineKind,
    graph: &Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    seed: u64,
    token: &CancelToken,
    ml: MultilevelConfig,
) -> Result<MultiRunReport, PartitionError> {
    let p: Box<dyn Partitioner> = match kind {
        EngineKind::Prop => Box::new(Prop::new(PropConfig::calibrated())),
        EngineKind::PropPaper => Box::new(Prop::new(PropConfig::default())),
        EngineKind::Fm => Box::new(FmBucket::default()),
        EngineKind::FmTree => Box::new(FmTree::default()),
        EngineKind::Ml => Box::new(Multilevel::standard(MultilevelConfig { seed, ..ml })),
    };
    p.run_multi_cancellable(graph, balance, runs, seed, ParallelPolicy::Sequential, token)
}

/// Runs `kind` through the recursive k-way driver under `token`.
///
/// The 2-way engine underneath each bisection is exactly the one
/// [`execute_with`] dispatches, and the driver's sequential run policy
/// matches it, so a `k = 2` uniform job through this path is
/// bit-identical to the bipartition path at the same seed.
///
/// # Errors
///
/// Propagates [`PartitionError`] from the driver — including the typed
/// `InfeasibleBudgets` for budget vectors that admit no packing.
#[allow(clippy::too_many_arguments)] // a flat job descriptor
pub fn execute_kway(
    kind: EngineKind,
    graph: &Hypergraph,
    k: usize,
    budgets: Option<Vec<f64>>,
    r1: f64,
    r2: f64,
    runs: usize,
    seed: u64,
    token: &CancelToken,
    ml: MultilevelConfig,
) -> Result<KwayReport, PartitionError> {
    let p: Box<dyn Partitioner> = match kind {
        EngineKind::Prop => Box::new(Prop::new(PropConfig::calibrated())),
        EngineKind::PropPaper => Box::new(Prop::new(PropConfig::default())),
        EngineKind::Fm => Box::new(FmBucket::default()),
        EngineKind::FmTree => Box::new(FmTree::default()),
        EngineKind::Ml => Box::new(Multilevel::standard(MultilevelConfig { seed, ..ml })),
    };
    let config = KwayConfig {
        k,
        budgets,
        runs,
        seed,
        r1,
        r2,
        policy: ParallelPolicy::Sequential,
    };
    partition_kway_cancellable(graph, p.as_ref(), &config, token)
}

/// FNV-1a 64 over the node→side assignment (one byte per node, `0` for
/// side A, `1` for side B). Clients compare this against a locally
/// computed hash to confirm bit-identical placement without shipping the
/// whole vector.
pub fn assignment_hash(sides: &[Side]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &s in sides {
        hash ^= u64::from(s == Side::B);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// FNV-1a 64 over a k-way `node → part` assignment. The per-node word is
/// the part number, so for parts `{0, 1}` this equals
/// [`assignment_hash`] over the matching side vector — a `k = 2` k-way
/// job hashes identically to the bipartition path it reduces to.
pub fn kway_assignment_hash(assignment: &[u32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &part in assignment {
        hash ^= u64::from(part);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::RunStatus;
    use prop_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn engine_names_roundtrip() {
        for kind in ALL_ENGINES {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::from_name("sa2"), None);
        let mut seen = [false; ALL_ENGINES.len()];
        for kind in ALL_ENGINES {
            assert!(!seen[kind.index()], "duplicate index");
            seen[kind.index()] = true;
        }
    }

    #[test]
    fn payload_parsing_matches_formats() {
        let g = generate(&GeneratorConfig::new(12, 14, 48).with_seed(5)).unwrap();
        let hgr = format::write_hgr(&g);
        let netd = format::write_netd(&g);
        assert_eq!(parse_payload("hgr", &hgr).unwrap().num_nodes(), 12);
        assert_eq!(parse_payload("netd", &netd).unwrap().num_nodes(), 12);
        assert!(parse_payload("hgr", "not a netlist").is_err());
        assert!(parse_payload("xml", &hgr).is_err());
    }

    #[test]
    fn untripped_execution_matches_direct_run_multi() {
        let g = generate(&GeneratorConfig::new(60, 70, 240).with_seed(3)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 60).unwrap();
        let token = CancelToken::new();
        for kind in [EngineKind::Prop, EngineKind::Fm, EngineKind::FmTree, EngineKind::Ml] {
            let report = execute(kind, &g, balance, 3, 7, &token).unwrap();
            assert_eq!(report.status, RunStatus::Completed);
            assert_eq!(report.started_runs, 3);
            let direct: Box<dyn Partitioner> = match kind {
                EngineKind::Prop => Box::new(Prop::new(PropConfig::calibrated())),
                EngineKind::Fm => Box::new(FmBucket::default()),
                EngineKind::FmTree => Box::new(FmTree::default()),
                _ => Box::new(Multilevel::standard(MultilevelConfig {
                    seed: 7,
                    ..MultilevelConfig::default()
                })),
            };
            let expect = direct.run_multi(&g, balance, 3, 7).unwrap();
            assert_eq!(report.result, expect, "{}", kind.name());
        }
    }

    #[test]
    fn ml_knobs_change_the_engine_configuration() {
        let g = generate(&GeneratorConfig::new(80, 90, 300).with_seed(4)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 80).unwrap();
        let token = CancelToken::new();
        let knobs = MultilevelConfig {
            coarsest_nodes: 16,
            coarsest_starts: 2,
            ..MultilevelConfig::default()
        };
        let report = execute_with(EngineKind::Ml, &g, balance, 2, 9, &token, knobs).unwrap();
        assert_eq!(report.status, RunStatus::Completed);
        assert!(report.result.partition.is_balanced(balance));
        let direct = Multilevel::standard(MultilevelConfig { seed: 9, ..knobs });
        let expect = direct.run_multi(&g, balance, 2, 9).unwrap();
        assert_eq!(report.result, expect);
    }

    #[test]
    fn assignment_hash_discriminates_and_is_stable() {
        let a = [Side::A, Side::B, Side::A];
        let b = [Side::A, Side::A, Side::B];
        assert_eq!(assignment_hash(&a), assignment_hash(&a));
        assert_ne!(assignment_hash(&a), assignment_hash(&b));
        assert_ne!(assignment_hash(&a[..2]), assignment_hash(&a));
    }
}
