//! The line-delimited wire protocol of the `prop-serve` daemon.
//!
//! Every request is one `\n`-terminated ASCII line: a verb followed by
//! space-separated `key=value` fields. Values that may contain arbitrary
//! bytes (the netlist payload) are percent-encoded, so the framing is
//! trivially resynchronisable: one line, one request. Every response is
//! one line of minimal JSON (see [`crate::json`]).
//!
//! ```text
//! submit engine=prop runs=4 seed=7 r1=0.45 r2=0.55 timeout_ms=0 priority=0 wait=1 ml_coarsest=120 ml_starts=8 ml_max_net=8 ml_refine_passes=1 ml_polish=1 ml_threads=0 ml_flow=0 ml_flow_corridor=3000 fmt=hgr payload=8%0A1%202%0A...
//! submit engine=ml runs=8 seed=7 circuit_id=golem4 wait=1
//! upload circuit=golem4 fmt=hgb payload=%50%52...
//! upload circuit=golem4 fmt=hgr path=%2Fdata%2Fgolem4.hgr
//! circuits
//! evict circuit=golem4
//! batch circuit_id=golem4 engines=fm,ml eps=0.45:0.55 runs=16 seed=7 chunk=2 timeout_ms=0
//! watch job=5
//! status job=3
//! wait job=3
//! cancel job=3
//! stats
//! shutdown
//! ping
//! ```
//!
//! Robustness contract (exercised by `tests/wire_adversarial.rs`): a
//! malformed line yields an error response and the connection stays
//! usable; an oversized line yields an error response and the connection
//! is dropped (the framing is lost); a premature disconnect mid-line is
//! a clean drop. Nothing on this path panics.

use std::fmt;
use std::io::{BufRead, ErrorKind};

/// Default cap on one request line, decoded payload included. Large
/// enough for multi-million-pin netlists, small enough to bound a
/// hostile client's memory use.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Highest admissible priority (priorities are `0..=MAX_PRIORITY`,
/// higher is more urgent, FIFO within a level).
pub const MAX_PRIORITY: u8 = 3;

/// A parsed request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter / histogram snapshot.
    Stats,
    /// Graceful shutdown: stop admitting, drain the queue, exit.
    Shutdown,
    /// Enqueue a partitioning job.
    Submit(SubmitRequest),
    /// Non-blocking job state query.
    Status {
        /// Job id.
        job: u64,
    },
    /// Block until the job reaches a terminal state.
    Wait {
        /// Job id.
        job: u64,
    },
    /// Trip the job's cancellation token.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Persist a netlist under a circuit id in the daemon's store.
    Upload(UploadRequest),
    /// List the circuits in the daemon's store.
    Circuits,
    /// Remove a circuit from the daemon's store.
    Evict {
        /// Circuit id to remove.
        circuit: String,
    },
    /// Submit a sharded sweep (coordinator mode only).
    Batch(crate::batch::BatchRequest),
    /// Stream a batch's progress events until its terminal `done` line
    /// (coordinator mode only). The one multi-line response in the
    /// protocol: each event is still one line of minimal JSON.
    Watch {
        /// Batch job id.
        job: u64,
    },
}

/// The fields of an `upload` line: exactly one netlist source (an inline
/// percent-encoded `payload` or a daemon-local `path`), persisted as a
/// `.hgb` snapshot under `circuit`.
#[derive(Clone, PartialEq, Debug)]
pub struct UploadRequest {
    /// Circuit id to store under (`[A-Za-z0-9_.-]`, no leading dot).
    pub circuit: String,
    /// Format of the inline payload: `hgr`, `netd`, or `hgb`. Ignored for
    /// `path` uploads, where the extension decides.
    pub fmt: String,
    /// Inline netlist bytes (text for `hgr`/`netd`, the binary image for
    /// `hgb`), or `None` for a `path` upload.
    pub payload: Option<Vec<u8>>,
    /// Daemon-local file to ingest instead of an inline payload — the
    /// route for circuits larger than the request cap.
    pub path: Option<String>,
}

impl UploadRequest {
    /// Renders the request as one wire line (without the trailing `\n`).
    pub fn render(&self) -> String {
        let mut line = format!("upload circuit={} fmt={}", self.circuit, self.fmt);
        if let Some(path) = &self.path {
            line.push_str(" path=");
            line.push_str(&percent_encode(path.as_bytes()));
        }
        if let Some(payload) = &self.payload {
            line.push_str(" payload=");
            line.push_str(&percent_encode(payload));
        }
        line
    }
}

/// The fields of a `submit` line.
#[derive(Clone, PartialEq, Debug)]
pub struct SubmitRequest {
    /// Engine name (`prop`, `prop-paper`, `fm`, `fm-tree`, `ml`).
    pub engine: String,
    /// Best-of-R multi-start runs (iterative engines).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Balance ratios.
    pub r1: f64,
    /// Balance ratios.
    pub r2: f64,
    /// Per-job execution deadline in milliseconds; 0 disables it.
    pub timeout_ms: u64,
    /// Scheduling priority (`0..=MAX_PRIORITY`, higher first).
    pub priority: u8,
    /// Netlist format: `hgr` or `netd`.
    pub fmt: String,
    /// The decoded netlist text. Empty when the job references a stored
    /// circuit via `circuit_id` instead.
    pub payload: String,
    /// When non-empty, the job runs against this circuit from the
    /// daemon's store (uploaded once via the `upload` verb) instead of an
    /// inline payload — upload once, sweep seeds/methods/ε after.
    pub circuit_id: String,
    /// When set, the response is sent only once the job is terminal and
    /// carries the full result.
    pub wait: bool,
    /// Multilevel knob (`ml` engine only, ignored otherwise): stop
    /// coarsening at this many nodes.
    pub ml_coarsest: usize,
    /// Multilevel knob: greedy initial bisections tried at the coarsest
    /// level.
    pub ml_starts: usize,
    /// Multilevel knob: largest net the matcher scores.
    pub ml_max_net: usize,
    /// Multilevel knob: FM pass cap at large weighted levels.
    pub ml_refine_passes: usize,
    /// Multilevel knob: PROP polish passes at unit-weight levels.
    pub ml_polish: usize,
    /// Multilevel knob: intra-run worker threads per V-cycle. `0` (the
    /// default) keeps the classic sequential engine; `n >= 1` engages the
    /// deterministic intra-parallel algorithms with `n` workers — the
    /// result is bit-identical for every `n >= 1`.
    pub ml_threads: usize,
    /// Multilevel knob: `1` enables flow-based corridor refinement after
    /// each level's move passes (`0` = off, the default).
    pub ml_flow: u8,
    /// Multilevel knob: corridor node cap per side for the flow pass.
    pub ml_flow_corridor: usize,
    /// Number of parts. `2` (the default) runs the classic bipartition
    /// path; `k > 2` (or any budget vector) routes the job through the
    /// recursive k-way driver.
    pub k: usize,
    /// Per-part area budgets for the k-way driver; empty = uniform mode.
    /// When non-empty the arity must equal `k`.
    pub budgets: Vec<f64>,
}

impl Default for SubmitRequest {
    fn default() -> Self {
        let ml = prop_multilevel::MultilevelConfig::default();
        SubmitRequest {
            engine: "prop".into(),
            runs: 1,
            seed: 0,
            r1: 0.45,
            r2: 0.55,
            timeout_ms: 0,
            priority: 0,
            fmt: "hgr".into(),
            payload: String::new(),
            circuit_id: String::new(),
            wait: false,
            ml_coarsest: ml.coarsest_nodes,
            ml_starts: ml.coarsest_starts,
            ml_max_net: ml.max_match_net,
            ml_refine_passes: ml.refine_passes,
            ml_polish: ml.polish_passes,
            ml_threads: 0,
            ml_flow: 0,
            ml_flow_corridor: ml.flow.corridor_nodes,
            k: 2,
            budgets: Vec::new(),
        }
    }
}

impl SubmitRequest {
    /// Renders the request as one wire line (without the trailing `\n`).
    /// The netlist source is `circuit_id=` when one is set, the inline
    /// `payload=` otherwise.
    pub fn render(&self) -> String {
        let source = if self.circuit_id.is_empty() {
            format!("payload={}", percent_encode(self.payload.as_bytes()))
        } else {
            format!("circuit_id={}", self.circuit_id)
        };
        let budgets = if self.budgets.is_empty() {
            String::new()
        } else {
            let list: Vec<String> = self.budgets.iter().map(f64::to_string).collect();
            format!(" budgets={}", list.join(","))
        };
        format!(
            "submit engine={} runs={} seed={} r1={} r2={} timeout_ms={} priority={} wait={} \
             ml_coarsest={} ml_starts={} ml_max_net={} ml_refine_passes={} ml_polish={} \
             ml_threads={} ml_flow={} ml_flow_corridor={} k={}{budgets} fmt={} {source}",
            self.engine,
            self.runs,
            self.seed,
            self.r1,
            self.r2,
            self.timeout_ms,
            self.priority,
            u8::from(self.wait),
            self.ml_coarsest,
            self.ml_starts,
            self.ml_max_net,
            self.ml_refine_passes,
            self.ml_polish,
            self.ml_threads,
            self.ml_flow,
            self.ml_flow_corridor,
            self.k,
            self.fmt,
        )
    }

    /// The multilevel engine configuration a job built from this request
    /// should run with (the engine seed is set separately, from `seed`).
    pub fn ml_config(&self) -> prop_multilevel::MultilevelConfig {
        prop_multilevel::MultilevelConfig {
            coarsest_nodes: self.ml_coarsest,
            coarsest_starts: self.ml_starts,
            max_match_net: self.ml_max_net,
            refine_passes: self.ml_refine_passes,
            polish_passes: self.ml_polish,
            intra: match self.ml_threads {
                0 => prop_core::ParallelPolicy::Sequential,
                n => prop_core::ParallelPolicy::Threads(n),
            },
            flow: prop_multilevel::FlowConfig {
                enabled: self.ml_flow != 0,
                corridor_nodes: self.ml_flow_corridor,
            },
            ..prop_multilevel::MultilevelConfig::default()
        }
    }
}

/// A framing or parse failure on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The line exceeded the configured request cap; framing is lost and
    /// the connection must be dropped.
    TooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// EOF arrived mid-line: the peer disconnected before terminating its
    /// request.
    Truncated,
    /// The line is not valid UTF-8.
    NotUtf8,
    /// The line failed to parse; the connection stays usable.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte limit")
            }
            WireError::Truncated => write!(f, "connection closed mid-request"),
            WireError::NotUtf8 => write!(f, "request is not valid UTF-8"),
            WireError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reads one `\n`-terminated line of at most `max_bytes` (terminator
/// excluded), without buffering past it.
///
/// Returns `Ok(None)` on a clean EOF before any byte of a new request.
///
/// # Errors
///
/// [`WireError::TooLarge`] once the cap is exceeded (the connection must
/// then be dropped — the rest of the oversized line was not consumed),
/// [`WireError::Truncated`] on EOF mid-line, and [`WireError::Malformed`]
/// on I/O errors other than interrupts.
pub fn read_request_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Malformed(format!("read failed: {e}"))),
        };
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(WireError::Truncated)
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if line.len() + nl > max_bytes {
                    return Err(WireError::TooLarge { limit: max_bytes });
                }
                line.extend_from_slice(&buf[..nl]);
                reader.consume(nl + 1);
                // Tolerate CRLF clients.
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                let n = buf.len();
                if line.len() + n > max_bytes {
                    return Err(WireError::TooLarge { limit: max_bytes });
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Percent-encodes arbitrary bytes into the wire's value alphabet
/// (unreserved ASCII passes through; everything else becomes `%XX`).
pub fn percent_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len());
    for &b in bytes {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'~' | b'-' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes a percent-encoded value back to raw bytes (the payload of a
/// binary `.hgb` upload is not UTF-8, so no string round-trip applies).
///
/// # Errors
///
/// Fails on truncated or non-hex escapes.
pub fn percent_decode_bytes(text: &str) -> Result<Vec<u8>, WireError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| WireError::Malformed("truncated percent escape".into()))?;
            let hex = std::str::from_utf8(hex)
                .map_err(|_| WireError::Malformed("bad percent escape".into()))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| WireError::Malformed(format!("bad percent escape %{hex}")))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

/// Decodes a percent-encoded value back to a UTF-8 string.
///
/// # Errors
///
/// Fails on truncated or non-hex escapes and on non-UTF-8 decoded bytes.
pub fn percent_decode(text: &str) -> Result<String, WireError> {
    String::from_utf8(percent_decode_bytes(text)?).map_err(|_| WireError::NotUtf8)
}

/// Parses one request line (UTF-8, `\n` already stripped).
///
/// # Errors
///
/// [`WireError::Malformed`] on unknown verbs or keys, bad values, or
/// missing required fields; [`WireError::NotUtf8`] when the payload
/// decodes to non-UTF-8 bytes.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let mut tokens = line.split(' ').filter(|t| !t.is_empty());
    let verb = tokens
        .next()
        .ok_or_else(|| WireError::Malformed("empty request".into()))?;
    let fields: Vec<(&str, &str)> = tokens
        .map(|t| {
            t.split_once('=')
                .ok_or_else(|| WireError::Malformed(format!("field {t:?} is not key=value")))
        })
        .collect::<Result<_, _>>()?;

    let job_field = |fields: &[(&str, &str)]| -> Result<u64, WireError> {
        let mut job = None;
        for &(k, v) in fields {
            match k {
                "job" => {
                    job = Some(v.parse::<u64>().map_err(|_| {
                        WireError::Malformed(format!("bad value {v:?} for job"))
                    })?)
                }
                other => {
                    return Err(WireError::Malformed(format!("unknown field {other:?}")))
                }
            }
        }
        job.ok_or_else(|| WireError::Malformed("missing job=<id>".into()))
    };

    match verb {
        "ping" | "stats" | "shutdown" => {
            if let Some(&(k, _)) = fields.first() {
                return Err(WireError::Malformed(format!(
                    "{verb} takes no fields (got {k:?})"
                )));
            }
            Ok(match verb {
                "ping" => Request::Ping,
                "stats" => Request::Stats,
                _ => Request::Shutdown,
            })
        }
        "status" => Ok(Request::Status {
            job: job_field(&fields)?,
        }),
        "wait" => Ok(Request::Wait {
            job: job_field(&fields)?,
        }),
        "cancel" => Ok(Request::Cancel {
            job: job_field(&fields)?,
        }),
        "submit" => parse_submit(&fields).map(Request::Submit),
        "batch" => crate::batch::BatchRequest::parse(&fields).map(Request::Batch),
        "watch" => Ok(Request::Watch {
            job: job_field(&fields)?,
        }),
        "upload" => parse_upload(&fields).map(Request::Upload),
        "circuits" => {
            if let Some(&(k, _)) = fields.first() {
                return Err(WireError::Malformed(format!(
                    "circuits takes no fields (got {k:?})"
                )));
            }
            Ok(Request::Circuits)
        }
        "evict" => {
            let mut circuit = None;
            for &(k, v) in &fields {
                match k {
                    "circuit" => circuit = Some(v.to_string()),
                    other => {
                        return Err(WireError::Malformed(format!("unknown field {other:?}")))
                    }
                }
            }
            Ok(Request::Evict {
                circuit: circuit
                    .ok_or_else(|| WireError::Malformed("missing circuit=<id>".into()))?,
            })
        }
        other => Err(WireError::Malformed(format!("unknown verb {other:?}"))),
    }
}

fn parse_upload(fields: &[(&str, &str)]) -> Result<UploadRequest, WireError> {
    let mut circuit = None;
    let mut fmt = "hgr".to_string();
    let mut payload = None;
    let mut path = None;
    for &(k, v) in fields {
        match k {
            "circuit" => circuit = Some(v.to_string()),
            "fmt" => {
                if v != "hgr" && v != "netd" && v != "hgb" {
                    return Err(WireError::Malformed(format!(
                        "unknown netlist format {v:?} (use hgr, netd, or hgb)"
                    )));
                }
                fmt = v.to_string();
            }
            "payload" => payload = Some(percent_decode_bytes(v)?),
            "path" => path = Some(percent_decode(v)?),
            other => return Err(WireError::Malformed(format!("unknown field {other:?}"))),
        }
    }
    let circuit =
        circuit.ok_or_else(|| WireError::Malformed("upload needs circuit=<id>".into()))?;
    if payload.is_some() == path.is_some() {
        return Err(WireError::Malformed(
            "upload needs exactly one of payload=<netlist> or path=<file>".into(),
        ));
    }
    Ok(UploadRequest {
        circuit,
        fmt,
        payload,
        path,
    })
}

fn parse_submit(fields: &[(&str, &str)]) -> Result<SubmitRequest, WireError> {
    fn val<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, WireError> {
        v.parse()
            .map_err(|_| WireError::Malformed(format!("bad value {v:?} for {key}")))
    }
    let mut req = SubmitRequest::default();
    let mut has_payload = false;
    for &(k, v) in fields {
        match k {
            "engine" => req.engine = v.to_string(),
            "runs" => req.runs = val(k, v)?,
            "seed" => req.seed = val(k, v)?,
            "r1" => req.r1 = val(k, v)?,
            "r2" => req.r2 = val(k, v)?,
            "timeout_ms" => req.timeout_ms = val(k, v)?,
            "priority" => {
                req.priority = val(k, v)?;
                if req.priority > MAX_PRIORITY {
                    return Err(WireError::Malformed(format!(
                        "priority {} exceeds the maximum {MAX_PRIORITY}",
                        req.priority
                    )));
                }
            }
            "wait" => {
                req.wait = match v {
                    "0" => false,
                    "1" => true,
                    _ => {
                        return Err(WireError::Malformed(format!(
                            "bad value {v:?} for wait (use 0 or 1)"
                        )))
                    }
                }
            }
            "fmt" => {
                if v != "hgr" && v != "netd" {
                    return Err(WireError::Malformed(format!(
                        "unknown netlist format {v:?} (use hgr or netd)"
                    )));
                }
                req.fmt = v.to_string();
            }
            "ml_coarsest" => req.ml_coarsest = val(k, v)?,
            "ml_starts" => req.ml_starts = val(k, v)?,
            "ml_max_net" => req.ml_max_net = val(k, v)?,
            "ml_refine_passes" => req.ml_refine_passes = val(k, v)?,
            "ml_polish" => req.ml_polish = val(k, v)?,
            "ml_threads" => req.ml_threads = val(k, v)?,
            "ml_flow" => req.ml_flow = val(k, v)?,
            "ml_flow_corridor" => req.ml_flow_corridor = val(k, v)?,
            "k" => req.k = val(k, v)?,
            "budgets" => {
                req.budgets = v
                    .split(',')
                    .map(|b| val::<f64>(k, b.trim()))
                    .collect::<Result<Vec<f64>, WireError>>()?;
                if req.budgets.is_empty() {
                    return Err(WireError::Malformed(
                        "budgets needs a comma-separated list of positive areas".into(),
                    ));
                }
            }
            "payload" => {
                req.payload = percent_decode(v)?;
                has_payload = true;
            }
            "circuit_id" => req.circuit_id = v.to_string(),
            other => return Err(WireError::Malformed(format!("unknown field {other:?}"))),
        }
    }
    if has_payload && !req.circuit_id.is_empty() {
        return Err(WireError::Malformed(
            "submit takes either payload=<netlist> or circuit_id=<id>, not both".into(),
        ));
    }
    if !has_payload && req.circuit_id.is_empty() {
        return Err(WireError::Malformed(
            "submit needs payload=<netlist> or circuit_id=<id>".into(),
        ));
    }
    if req.runs == 0 {
        return Err(WireError::Malformed("runs must be at least 1".into()));
    }
    if req.k < 2 {
        return Err(WireError::Malformed("k must be at least 2".into()));
    }
    if !req.budgets.is_empty() && req.budgets.len() != req.k {
        return Err(WireError::Malformed(format!(
            "{} budgets supplied for k={} parts",
            req.budgets.len(),
            req.k
        )));
    }
    if req.budgets.iter().any(|b| !b.is_finite() || *b <= 0.0) {
        return Err(WireError::Malformed(
            "budgets must be finite and positive".into(),
        ));
    }
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn percent_roundtrip() {
        let payload = "8 7\n1 2\n% odd ~ bytes\t\r\nümlaut";
        let enc = percent_encode(payload.as_bytes());
        assert!(!enc.contains(' ') && !enc.contains('\n'));
        assert_eq!(percent_decode(&enc).unwrap(), payload);
    }

    #[test]
    fn percent_decode_rejects_bad_escapes() {
        assert!(percent_decode("%").is_err());
        assert!(percent_decode("%1").is_err());
        assert!(percent_decode("%zz").is_err());
        // Valid escape, invalid UTF-8.
        assert_eq!(percent_decode("%FF"), Err(WireError::NotUtf8));
    }

    #[test]
    fn submit_line_roundtrip() {
        let req = SubmitRequest {
            engine: "fm".into(),
            runs: 20,
            seed: 99,
            r1: 0.4,
            r2: 0.6,
            timeout_ms: 1500,
            priority: 2,
            fmt: "hgr".into(),
            payload: "3 2\n1 2\n2 3\n".into(),
            circuit_id: String::new(),
            wait: true,
            ml_coarsest: 64,
            ml_starts: 16,
            ml_max_net: 12,
            ml_refine_passes: 2,
            ml_polish: 0,
            ml_threads: 4,
            ml_flow: 1,
            ml_flow_corridor: 800,
            k: 2,
            budgets: Vec::new(),
        };
        let parsed = parse_request(&req.render()).unwrap();
        assert_eq!(parsed, Request::Submit(req));
    }

    #[test]
    fn kway_fields_roundtrip_and_validate() {
        let req = SubmitRequest {
            engine: "ml".into(),
            circuit_id: "golem3".into(),
            k: 4,
            budgets: vec![1200.0, 600.5, 600.5, 400.0],
            ..SubmitRequest::default()
        };
        let line = req.render();
        assert!(line.contains("k=4"));
        assert!(line.contains("budgets=1200,600.5,600.5,400"));
        assert_eq!(parse_request(&line).unwrap(), Request::Submit(req));

        // Uniform k-way renders no budgets field at all.
        let req = SubmitRequest {
            k: 8,
            payload: "x".into(),
            ..SubmitRequest::default()
        };
        assert!(!req.render().contains("budgets="));
        assert_eq!(parse_request(&req.render()).unwrap(), Request::Submit(req));

        // Arity, positivity, and k floor are wire-level errors.
        assert!(parse_request("submit payload=a k=1").is_err());
        assert!(parse_request("submit payload=a k=3 budgets=1,2").is_err());
        assert!(parse_request("submit payload=a k=2 budgets=1,-2").is_err());
        assert!(parse_request("submit payload=a k=2 budgets=").is_err());
    }

    #[test]
    fn submit_by_circuit_id_roundtrip() {
        let req = SubmitRequest {
            engine: "ml".into(),
            circuit_id: "golem4".into(),
            runs: 3,
            seed: 11,
            wait: true,
            ..SubmitRequest::default()
        };
        let line = req.render();
        assert!(line.contains("circuit_id=golem4"));
        assert!(!line.contains("payload="), "no inline payload when stored");
        assert_eq!(parse_request(&line).unwrap(), Request::Submit(req));
        // Exactly one netlist source.
        assert!(parse_request("submit circuit_id=a payload=b").is_err());
        assert!(parse_request("submit engine=ml runs=2").is_err());
    }

    #[test]
    fn upload_roundtrips_inline_and_path() {
        let req = UploadRequest {
            circuit: "c17".into(),
            fmt: "hgb".into(),
            payload: Some(vec![0x00, 0xff, b'\n', b'%', 0x7f]),
            path: None,
        };
        assert_eq!(parse_request(&req.render()).unwrap(), Request::Upload(req));

        let req = UploadRequest {
            circuit: "big".into(),
            fmt: "hgr".into(),
            payload: None,
            path: Some("/tmp/some dir/big.hgb".into()),
        };
        assert_eq!(parse_request(&req.render()).unwrap(), Request::Upload(req));

        // Exactly one source, and a circuit id, are required.
        assert!(parse_request("upload circuit=x").is_err());
        assert!(parse_request("upload circuit=x payload=a path=b").is_err());
        assert!(parse_request("upload payload=a").is_err());
        assert!(parse_request("upload circuit=x fmt=xml payload=a").is_err());
    }

    #[test]
    fn circuits_and_evict_parse() {
        assert_eq!(parse_request("circuits").unwrap(), Request::Circuits);
        assert!(parse_request("circuits extra=1").is_err());
        assert_eq!(
            parse_request("evict circuit=golem3").unwrap(),
            Request::Evict {
                circuit: "golem3".into()
            }
        );
        assert!(parse_request("evict").is_err());
    }

    #[test]
    fn percent_decode_bytes_handles_binary() {
        let raw: Vec<u8> = (0..=255).collect();
        let enc = percent_encode(&raw);
        assert_eq!(percent_decode_bytes(&enc).unwrap(), raw);
        // The str decoder still rejects non-UTF-8.
        assert_eq!(percent_decode("%FF"), Err(WireError::NotUtf8));
    }

    #[test]
    fn ml_knobs_default_and_map_to_engine_config() {
        // A submit line without ml fields parses to the engine defaults.
        let parsed = parse_request("submit engine=ml payload=abc").unwrap();
        let Request::Submit(req) = parsed else {
            panic!("expected submit")
        };
        assert_eq!(req.ml_config(), prop_multilevel::MultilevelConfig::default());

        // Explicit fields land on the matching config knobs.
        let parsed =
            parse_request("submit engine=ml ml_coarsest=50 ml_starts=3 payload=abc").unwrap();
        let Request::Submit(req) = parsed else {
            panic!("expected submit")
        };
        let cfg = req.ml_config();
        assert_eq!(cfg.coarsest_nodes, 50);
        assert_eq!(cfg.coarsest_starts, 3);
        assert_eq!(cfg.intra, prop_core::ParallelPolicy::Sequential);

        // ml_threads switches the engine to the intra-parallel V-cycle.
        let parsed = parse_request("submit engine=ml ml_threads=2 payload=abc").unwrap();
        let Request::Submit(req) = parsed else {
            panic!("expected submit")
        };
        assert_eq!(req.ml_config().intra, prop_core::ParallelPolicy::Threads(2));

        // ml_flow enables the corridor-flow pass; the corridor knob
        // passes through.
        let parsed =
            parse_request("submit engine=ml ml_flow=1 ml_flow_corridor=250 payload=abc").unwrap();
        let Request::Submit(req) = parsed else {
            panic!("expected submit")
        };
        let cfg = req.ml_config();
        assert!(cfg.flow.enabled);
        assert_eq!(cfg.flow.corridor_nodes, 250);
        assert!(parse_request("submit ml_starts=x payload=abc").is_err());
    }

    #[test]
    fn simple_verbs_parse() {
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("status job=12").unwrap(),
            Request::Status { job: 12 }
        );
        assert_eq!(
            parse_request("wait job=3").unwrap(),
            Request::Wait { job: 3 }
        );
        assert_eq!(
            parse_request("cancel job=0").unwrap(),
            Request::Cancel { job: 0 }
        );
    }

    #[test]
    fn batch_and_watch_roundtrip() {
        let req = crate::batch::BatchRequest {
            circuit_id: "golem3".into(),
            engines: vec!["fm".into(), "ml".into()],
            eps: vec![(0.45, 0.55), (0.4, 0.6)],
            runs: 12,
            seed: 41,
            chunk: 2,
            timeout_ms: 2500,
        };
        assert_eq!(
            parse_request(&req.render()).unwrap(),
            Request::Batch(req.clone())
        );
        // Defaults apply when only the circuit is named.
        let parsed = parse_request("batch circuit_id=c17").unwrap();
        let Request::Batch(minimal) = parsed else {
            panic!("expected batch")
        };
        assert_eq!(minimal.engines, vec!["prop".to_string()]);
        assert_eq!(minimal.eps, vec![(0.45, 0.55)]);
        assert_eq!(minimal.runs, 1);

        assert_eq!(parse_request("watch job=9").unwrap(), Request::Watch { job: 9 });
        for bad in [
            "batch",
            "batch circuit_id=c runs=0",
            "batch circuit_id=c chunk=0",
            "batch circuit_id=c engines=sa2",
            "batch circuit_id=c eps=0.6:0.4",
            "batch circuit_id=c eps=half",
            "batch circuit_id=c frobnicate=1",
            "watch",
            "watch job=x",
            "watch circuit=c",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "frobnicate",
            "status",
            "status job=x",
            "status jib=1",
            "ping extra=1",
            "submit",
            "submit payload=abc runs=0",
            "submit payload=abc priority=9",
            "submit payload=abc wait=yes",
            "submit payload=abc fmt=xml",
            "submit payload=%GG",
            "submit key-without-value payload=a",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn bounded_line_reader() {
        let mut r = BufReader::new(&b"hello\nworld\n"[..]);
        assert_eq!(read_request_line(&mut r, 64).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_request_line(&mut r, 64).unwrap(), Some(b"world".to_vec()));
        assert_eq!(read_request_line(&mut r, 64).unwrap(), None);

        // CRLF tolerated.
        let mut r = BufReader::new(&b"ping\r\n"[..]);
        assert_eq!(read_request_line(&mut r, 64).unwrap(), Some(b"ping".to_vec()));

        // Truncated: bytes then EOF without a newline.
        let mut r = BufReader::new(&b"no newline"[..]);
        assert_eq!(read_request_line(&mut r, 64), Err(WireError::Truncated));

        // Oversized: cap excludes the terminator.
        let mut r = BufReader::new(&b"123456789\n"[..]);
        assert_eq!(
            read_request_line(&mut r, 4),
            Err(WireError::TooLarge { limit: 4 })
        );
        let mut r = BufReader::new(&b"1234\n"[..]);
        assert_eq!(read_request_line(&mut r, 4).unwrap(), Some(b"1234".to_vec()));
    }
}
