//! A minimal JSON model, writer, and parser — enough for the daemon's
//! line-delimited responses, with no external dependency (the build
//! environment is offline; see the `compat/` tradition).
//!
//! The writer emits deterministic output: object keys keep insertion
//! order, and numbers use Rust's shortest-roundtrip `f64` formatting, so
//! a cut cost written by the server parses back to the bit-identical
//! `f64` on the client. Values that JSON cannot represent (NaN,
//! infinities) are written as `null` — the daemon never produces them.
//!
//! The parser is a bounded recursive-descent over bytes: callers cap the
//! input size at the framing layer, and nesting depth is capped here, so
//! adversarial documents fail with an error instead of exhausting the
//! stack. Every failure is a [`JsonError`]; no input can panic it (see
//! the fuzz tests in `tests/wire_adversarial.rs`).

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's f64 Display is the shortest string that
                    // round-trips, so client-side parses are bit-exact.
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience builder for the common object shape.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience constructor for a string value.
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

/// Convenience constructor for a numeric value.
pub fn num(n: f64) -> Json {
    Json::Num(n)
}

/// A `u64` rendered as a number when exactly representable, otherwise as
/// a decimal string (JSON doubles lose integers above 2^53 — job
/// counters stay numeric, full-width hashes go through [`hex64`]).
pub fn uint(n: u64) -> Json {
    if n <= (1u64 << 53) {
        Json::Num(n as f64)
    } else {
        Json::Str(n.to_string())
    }
}

/// A 64-bit value as a fixed-width hex string — the encoding for
/// assignment hashes, which exceed the exact-integer range of doubles.
pub fn hex64(n: u64) -> Json {
    Json::Str(format!("{n:016x}"))
}

/// Parses a [`hex64`] string back to its value.
pub fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() == 16 {
        u64::from_str_radix(s, 16).ok()
    } else {
        None
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (and nothing but — trailing non-whitespace is
/// an error).
///
/// # Errors
///
/// Returns a [`JsonError`] on any malformed input; no input panics.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        // Duplicate keys are rejected: responses never contain them, so a
        // duplicate marks a malformed document.
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are sound; find the next char boundary).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` itself already
    /// consumed), including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

/// Length of the UTF-8 sequence starting with `first` (1 for continuation
/// or invalid bytes; the subsequent `from_utf8` rejects those).
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_roundtrip() {
        let doc = obj(vec![
            ("ok", Json::Bool(true)),
            ("job", uint(7)),
            ("cut", num(1396.0)),
            ("cuts", Json::Arr(vec![num(1.5), num(-2.0), num(0.0)])),
            ("name", str("p2 \"quoted\" \\ tab\t")),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("job").unwrap().as_u64(), Some(7));
        assert_eq!(back.get("cut").unwrap().as_f64(), Some(1396.0));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e300, -4.9e-324, 12345.6789, 2f64.powi(60)] {
            let text = Json::Num(v).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
    }

    #[test]
    fn hash_hex_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xcbf29ce484222325] {
            let j = hex64(v);
            assert_eq!(parse_hex64(j.as_str().unwrap()), Some(v));
        }
        assert_eq!(parse_hex64("xyz"), None);
        assert_eq!(parse_hex64("123"), None);
    }

    #[test]
    fn uint_above_doubles_goes_string() {
        assert_eq!(uint(1 << 53), Json::Num((1u64 << 53) as f64));
        assert_eq!(uint((1 << 53) + 1), Json::Str(((1u64 << 53) + 1).to_string()));
    }

    #[test]
    fn nonfinite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[", "\"", "{\"a\":}", "[1,]", "tru", "nul", "01x", "--1",
            "{\"a\":1,\"a\":2}", "\"\\q\"", "\"\\u12\"", "\"\\ud800\"", "1 2",
            "{\"a\" 1}", "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }
}
