//! The daemon's named-circuit store: upload a netlist once, then submit
//! jobs by `circuit_id` and sweep seeds/methods/ε against a shared
//! read-only hypergraph.
//!
//! Circuits persist as canonical `.hgb` snapshots under one store
//! directory (`<dir>/<id>.hgb`), written atomically (temp file +
//! `rename`) so a concurrent reader never observes a partial file — the
//! invariant that makes handing out mmap-backed views of store files
//! sound. A loaded circuit is cached as an `Arc<Hypergraph>` so the N
//! jobs of a sweep share one materialized graph instead of N copies.
//!
//! Circuit ids are restricted to `[A-Za-z0-9_.-]` with no leading dot:
//! the id is used as a file name, and the alphabet rules out path
//! traversal (`..`, separators) by construction.

use prop_netlist::hgb;
use prop_netlist::Hypergraph;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Longest admissible circuit id.
pub const MAX_CIRCUIT_ID_LEN: usize = 64;

/// An error from a store operation, already shaped for a wire error
/// response (`code()` is the machine-readable error tag).
#[derive(Clone, PartialEq, Debug)]
pub enum StoreError {
    /// The id violates the `[A-Za-z0-9_.-]` / no-leading-dot / length
    /// rules.
    InvalidId(String),
    /// No stored circuit has this id.
    Unknown(String),
    /// The netlist bytes failed to parse or validate.
    Invalid(String),
    /// The circuit is pinned by queued or running work and cannot be
    /// evicted — the eviction would unmap the file under a job.
    Busy(String),
    /// A filesystem operation failed.
    Io(String),
}

impl StoreError {
    /// Machine-readable error tag for wire responses.
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::InvalidId(_) => "invalid_circuit_id",
            StoreError::Unknown(_) => "unknown_circuit",
            StoreError::Invalid(_) => "invalid_netlist",
            StoreError::Busy(_) => "circuit_busy",
            StoreError::Io(_) => "store_io",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidId(id) => write!(
                f,
                "invalid circuit id {id:?} (use 1-{MAX_CIRCUIT_ID_LEN} of [A-Za-z0-9_.-], no leading dot)"
            ),
            StoreError::Unknown(id) => write!(f, "unknown circuit {id:?}"),
            StoreError::Invalid(m) => write!(f, "invalid netlist: {m}"),
            StoreError::Busy(id) => {
                write!(f, "circuit {id:?} is referenced by queued or running work")
            }
            StoreError::Io(m) => write!(f, "store I/O failure: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Stats of one stored circuit, as reported by the `circuits` verb.
/// Produced from the `.hgb` header alone — listing a store of
/// multi-million-node circuits stays O(header) per file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoredCircuit {
    /// The circuit id.
    pub id: String,
    /// Number of nodes.
    pub nodes: u64,
    /// Number of nets.
    pub nets: u64,
    /// Number of pins.
    pub pins: u64,
    /// Snapshot size on disk in bytes.
    pub bytes: u64,
    /// Whether the circuit is currently materialized in the cache.
    pub cached: bool,
}

/// The named-circuit store: a directory of `.hgb` snapshots plus an
/// in-memory cache of materialized hypergraphs.
pub struct CircuitStore {
    dir: PathBuf,
    cache: Mutex<HashMap<String, Arc<Hypergraph>>>,
    /// Reference counts of circuits held by queued or running work
    /// (jobs and batches). A pinned circuit refuses `evict` with
    /// [`StoreError::Busy`] — a job must never partition against an
    /// unmapped snapshot.
    pins: Mutex<HashMap<String, usize>>,
}

/// Whether `id` is an admissible circuit id (file-name-safe by
/// construction: no separators, no `..`, no hidden files).
pub fn valid_circuit_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_CIRCUIT_ID_LEN
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

impl CircuitStore {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> CircuitStore {
        CircuitStore {
            dir: dir.into(),
            cache: Mutex::new(HashMap::new()),
            pins: Mutex::new(HashMap::new()),
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_of(&self, id: &str) -> Result<PathBuf, StoreError> {
        if !valid_circuit_id(id) {
            return Err(StoreError::InvalidId(id.to_string()));
        }
        Ok(self.dir.join(format!("{id}.hgb")))
    }

    fn cache(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Hypergraph>>> {
        self.cache.lock().expect("circuit store cache lock")
    }

    /// Persists `graph` under `id` (atomic temp-file + rename write of
    /// the canonical `.hgb` image) and caches the materialized graph.
    /// Re-uploading an id replaces its snapshot.
    pub fn put(&self, id: &str, graph: Hypergraph) -> Result<StoredCircuit, StoreError> {
        let path = self.file_of(id)?;
        std::fs::create_dir_all(&self.dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let bytes = hgb::write_hgb(&graph);
        let tmp = self.dir.join(format!(".{id}.hgb.tmp"));
        std::fs::write(&tmp, &bytes).map_err(|e| StoreError::Io(e.to_string()))?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            std::fs::remove_file(&tmp).ok();
            return Err(StoreError::Io(e.to_string()));
        }
        let info = StoredCircuit {
            id: id.to_string(),
            nodes: graph.num_nodes() as u64,
            nets: graph.num_nets() as u64,
            pins: graph.num_pins() as u64,
            bytes: bytes.len() as u64,
            cached: true,
        };
        self.cache().insert(id.to_string(), Arc::new(graph));
        Ok(info)
    }

    /// The materialized hypergraph for `id`: the cached `Arc` when the
    /// circuit is warm, otherwise loaded from its `.hgb` snapshot (mmap
    /// fast path) and cached for the next job in the sweep.
    pub fn get(&self, id: &str) -> Result<Arc<Hypergraph>, StoreError> {
        let path = self.file_of(id)?;
        if let Some(graph) = self.cache().get(id) {
            return Ok(Arc::clone(graph));
        }
        let (graph, _report) = hgb::load_hgb(&path).map_err(|e| match e {
            hgb::HgbLoadError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
                StoreError::Unknown(id.to_string())
            }
            hgb::HgbLoadError::Io(io) => StoreError::Io(io.to_string()),
            hgb::HgbLoadError::Format(f) => StoreError::Invalid(f.to_string()),
        })?;
        let graph = Arc::new(graph);
        self.cache()
            .entry(id.to_string())
            .or_insert_with(|| Arc::clone(&graph));
        Ok(graph)
    }

    /// Whether `id` is stored (cached or on disk) — the cheap existence
    /// probe `submit circuit_id=` uses to reject unknown ids at admission
    /// time instead of at job run time.
    pub fn contains(&self, id: &str) -> Result<bool, StoreError> {
        let path = self.file_of(id)?;
        Ok(self.cache().contains_key(id) || path.is_file())
    }

    /// Lists the stored circuits (sorted by id), with header-only stats:
    /// each `.hgb` is opened and structurally validated but no section
    /// payload is read.
    pub fn list(&self) -> Result<Vec<StoredCircuit>, StoreError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            // An empty store directory may not exist yet.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        let cache = self.cache();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(".hgb") else {
                continue;
            };
            if !valid_circuit_id(id) {
                continue; // temp files and foreign content
            }
            let file = hgb::HgbFile::open(&entry.path()).map_err(|e| StoreError::Io(e.to_string()))?;
            let stats = hgb::peek_stats(file.bytes())
                .map_err(|e| StoreError::Invalid(format!("{name}: {e}")))?;
            out.push(StoredCircuit {
                id: id.to_string(),
                nodes: stats.nodes,
                nets: stats.nets,
                pins: stats.pins,
                bytes: file.bytes().len() as u64,
                cached: cache.contains_key(id),
            });
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Pins `id` against eviction for the lifetime of one queued or
    /// running piece of work. Pins nest (a batch and its sub-jobs may
    /// each hold one); every pin must be paired with an [`unpin`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Unknown`] when no such circuit is stored — pinning
    /// happens at admission time, where the existence probe lives.
    ///
    /// [`unpin`]: CircuitStore::unpin
    pub fn pin(&self, id: &str) -> Result<(), StoreError> {
        if !self.contains(id)? {
            return Err(StoreError::Unknown(id.to_string()));
        }
        *self
            .pins
            .lock()
            .expect("circuit store pin lock")
            .entry(id.to_string())
            .or_insert(0) += 1;
        Ok(())
    }

    /// Releases one pin on `id`. A no-op for unpinned ids, so release
    /// paths (job finish, rejected admission, batch teardown) can call
    /// it unconditionally.
    pub fn unpin(&self, id: &str) {
        let mut pins = self.pins.lock().expect("circuit store pin lock");
        if let Some(count) = pins.get_mut(id) {
            *count -= 1;
            if *count == 0 {
                pins.remove(id);
            }
        }
    }

    /// Whether `id` is currently pinned by queued or running work.
    pub fn pinned(&self, id: &str) -> bool {
        self.pins
            .lock()
            .expect("circuit store pin lock")
            .contains_key(id)
    }

    /// The raw `.hgb` snapshot bytes of `id` — what a coordinator ships
    /// to a worker that lacks the circuit (store-to-store transfer).
    /// Reads the on-disk image; falls back to re-serializing the cached
    /// graph when only the cache holds it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unknown`] when the circuit is not stored,
    /// [`StoreError::Io`] on read failures.
    pub fn snapshot_bytes(&self, id: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.file_of(id)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => match self.cache().get(id) {
                Some(graph) => Ok(hgb::write_hgb(graph)),
                None => Err(StoreError::Unknown(id.to_string())),
            },
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    /// Removes `id` from the cache and deletes its snapshot. Returns
    /// whether the circuit existed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Busy`] while the circuit is pinned by queued or
    /// running work — eviction must never unmap a file under a job.
    pub fn evict(&self, id: &str) -> Result<bool, StoreError> {
        let path = self.file_of(id)?;
        if self.pinned(id) {
            return Err(StoreError::Busy(id.to_string()));
        }
        let cached = self.cache().remove(id).is_some();
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(cached),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prop-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_graph(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(30, 34, 120).with_seed(seed)).unwrap()
    }

    #[test]
    fn id_validation() {
        assert!(valid_circuit_id("golem4"));
        assert!(valid_circuit_id("a-b_c.1"));
        assert!(!valid_circuit_id(""));
        assert!(!valid_circuit_id(".hidden"));
        assert!(!valid_circuit_id("a/b"));
        assert!(!valid_circuit_id("a b"));
        assert!(!valid_circuit_id("ü"));
        assert!(!valid_circuit_id(&"x".repeat(MAX_CIRCUIT_ID_LEN + 1)));
        assert!(valid_circuit_id(&"x".repeat(MAX_CIRCUIT_ID_LEN)));
        // `..` never forms a path escape: the stored name is "<id>.hgb"
        // inside dir, and ids cannot contain separators.
        assert!(valid_circuit_id("a..b"));
    }

    #[test]
    fn put_get_list_evict_lifecycle() {
        let dir = test_dir("lifecycle");
        let store = CircuitStore::new(&dir);
        assert_eq!(store.list().unwrap(), vec![], "empty before first write");
        assert!(!store.contains("c1").unwrap());

        let g1 = small_graph(1);
        let info = store.put("c1", g1.clone()).unwrap();
        assert_eq!(info.nodes, 30);
        assert!(info.cached);
        assert!(store.contains("c1").unwrap());
        assert_eq!(*store.get("c1").unwrap(), g1);

        store.put("c2", small_graph(2)).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(
            listed.iter().map(|c| c.id.as_str()).collect::<Vec<_>>(),
            vec!["c1", "c2"]
        );

        assert!(store.evict("c1").unwrap());
        assert!(!store.evict("c1").unwrap(), "second evict reports absence");
        assert!(matches!(store.get("c1"), Err(StoreError::Unknown(_))));
        assert_eq!(store.list().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_survives_cold_cache() {
        let dir = test_dir("cold");
        let g = small_graph(7);
        {
            let store = CircuitStore::new(&dir);
            store.put("cold", g.clone()).unwrap();
        }
        // A fresh store (fresh cache) loads from the .hgb snapshot.
        let store = CircuitStore::new(&dir);
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert!(!listed[0].cached);
        assert_eq!(*store.get("cold").unwrap(), g);
        assert!(store.list().unwrap()[0].cached, "get warms the cache");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweeps_share_one_materialized_graph() {
        let dir = test_dir("shared");
        let store = CircuitStore::new(&dir);
        store.put("s", small_graph(3)).unwrap();
        let a = store.get("s").unwrap();
        let b = store.get("s").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "jobs share the cached Arc");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_ids_are_rejected_everywhere() {
        let dir = test_dir("invalid");
        let store = CircuitStore::new(&dir);
        for id in ["", "../escape", "a/b", ".dot"] {
            assert!(matches!(store.put(id, small_graph(1)), Err(StoreError::InvalidId(_))));
            assert!(matches!(store.get(id), Err(StoreError::InvalidId(_))));
            assert!(matches!(store.evict(id), Err(StoreError::InvalidId(_))));
            assert!(matches!(store.contains(id), Err(StoreError::InvalidId(_))));
        }
        assert!(!dir.exists(), "no write ever happened");
    }

    #[test]
    fn pinned_circuits_refuse_eviction() {
        let dir = test_dir("pins");
        let store = CircuitStore::new(&dir);
        let g = small_graph(6);
        store.put("busy", g.clone()).unwrap();

        store.pin("busy").unwrap();
        store.pin("busy").unwrap(); // pins nest
        let err = store.evict("busy").unwrap_err();
        assert!(matches!(err, StoreError::Busy(_)));
        assert_eq!(err.code(), "circuit_busy");
        assert!(store.contains("busy").unwrap(), "nothing was removed");
        assert_eq!(*store.get("busy").unwrap(), g, "still mapped and readable");

        store.unpin("busy");
        assert!(store.evict("busy").is_err(), "one pin still held");
        store.unpin("busy");
        assert!(!store.pinned("busy"));
        assert!(store.evict("busy").unwrap(), "unpinned circuit evicts");

        // Pinning a missing circuit is an admission-time error; unpin
        // of an unpinned id is a safe no-op.
        assert!(matches!(store.pin("ghost"), Err(StoreError::Unknown(_))));
        store.unpin("ghost");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_bytes_round_trip_through_a_second_store() {
        let dir_a = test_dir("snap-a");
        let dir_b = test_dir("snap-b");
        let a = CircuitStore::new(&dir_a);
        let b = CircuitStore::new(&dir_b);
        let g = small_graph(8);
        a.put("xfer", g.clone()).unwrap();

        // The store-to-store transfer path: ship raw .hgb bytes, parse
        // on the receiving side, store under the same id.
        let bytes = a.snapshot_bytes("xfer").unwrap();
        let parsed = hgb::parse_hgb(&bytes).unwrap();
        b.put("xfer", parsed).unwrap();
        assert_eq!(*b.get("xfer").unwrap(), g);

        assert!(matches!(a.snapshot_bytes("ghost"), Err(StoreError::Unknown(_))));
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn corrupt_snapshot_reports_invalid() {
        let dir = test_dir("corrupt");
        let store = CircuitStore::new(&dir);
        store.put("ok", small_graph(4)).unwrap();
        std::fs::write(dir.join("bad.hgb"), b"not a snapshot").unwrap();
        // A fresh store has no cache entry, so the corrupt bytes are hit.
        let fresh = CircuitStore::new(&dir);
        assert!(matches!(fresh.get("bad"), Err(StoreError::Invalid(_))));
        assert!(fresh.list().is_err(), "listing surfaces the corruption");
        std::fs::remove_dir_all(&dir).ok();
    }
}
