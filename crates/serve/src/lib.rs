//! `prop-serve` — a std-only partitioning daemon over the PROP suite.
//!
//! The daemon turns the library's deterministic multi-start harness into
//! a long-running service: clients submit netlists over TCP, a bounded
//! priority queue applies admission control, a worker pool runs the
//! engines through the cancellable harness, and a `stats` endpoint
//! exposes live counters and latency histograms. Results are
//! **bit-identical** to direct library calls — the workers use the same
//! sequential multi-start protocol, and an untripped cancellation token
//! changes no control flow.
//!
//! The wire protocol is deliberately minimal (the build environment has
//! no registry access, so everything here is hand-rolled std): one
//! `\n`-terminated `verb key=value...` line per request, one line of
//! compact JSON per response. See [`wire`] for the codec and DESIGN.md
//! §11 for the full specification.
//!
//! ```no_run
//! use prop_serve::{client::Client, server, wire::SubmitRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = server::start(&server::ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let response = client.submit(&SubmitRequest {
//!     engine: "prop".into(),
//!     runs: 4,
//!     payload: "2 2\n1 2\n1 2\n".into(),
//!     wait: true,
//!     ..SubmitRequest::default()
//! })?;
//! println!("{}", response.render());
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod cluster;
pub mod engine;
pub mod job;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod store;
pub mod wire;

pub use batch::{BatchRequest, BatchResult, GroupResult, SubJob, SubJobOutcome};
pub use client::{Client, ClientError, ConnectRetry};
pub use cluster::{ClusterConfig, Coordinator};
pub use engine::EngineKind;
pub use job::{JobOutcome, JobPhase, JobStatus, JobTable, JobView};
pub use json::Json;
pub use metrics::{LatencyHistogram, Metrics};
pub use queue::{JobQueue, PushError};
pub use server::{start, ServerConfig, ServerHandle};
pub use store::{CircuitStore, StoreError, StoredCircuit};
pub use wire::{Request, SubmitRequest, UploadRequest, WireError, DEFAULT_MAX_REQUEST_BYTES};
