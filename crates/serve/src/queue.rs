//! The daemon's bounded, priority-aware job queue.
//!
//! Admission control happens at the producer: [`JobQueue::try_push`]
//! rejects outright once the queue holds `capacity` jobs (the connection
//! handler turns that into a 429-style `queue_full` error), so a burst of
//! submissions cannot grow daemon memory without bound. Consumers block
//! on [`JobQueue::pop_blocking`], which serves the highest non-empty
//! priority lane first and is FIFO within a lane.
//!
//! Shutdown is a drain, not an abort: [`JobQueue::drain`] wakes every
//! blocked worker, but `pop_blocking` keeps handing out queued jobs and
//! only returns `None` once the lanes are empty — in-flight and queued
//! work completes before the daemon exits.

use crate::wire::MAX_PRIORITY;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

const LANES: usize = MAX_PRIORITY as usize + 1;

struct State {
    /// One FIFO lane per priority level; index = priority.
    lanes: [VecDeque<u64>; LANES],
    /// Total queued jobs across lanes (kept to make `depth` O(1)).
    len: usize,
    /// Set by [`JobQueue::drain`]: no further admissions, pop until empty.
    draining: bool,
}

/// A bounded multi-priority MPMC queue of job ids.
pub struct JobQueue {
    capacity: usize,
    state: Mutex<State>,
    available: Condvar,
}

/// Why [`JobQueue::try_push`] refused a job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// The queue already holds `capacity` jobs.
    Full,
    /// The daemon is shutting down and admits nothing new.
    Draining,
}

impl JobQueue {
    /// Creates a queue admitting at most `capacity` queued jobs
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                draining: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").len
    }

    /// Enqueues `job` at `priority` (clamped to [`MAX_PRIORITY`]).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Draining`] after
    /// [`JobQueue::drain`].
    pub fn try_push(&self, job: u64, priority: u8) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.draining {
            return Err(PushError::Draining);
        }
        if state.len >= self.capacity {
            return Err(PushError::Full);
        }
        let lane = (priority.min(MAX_PRIORITY)) as usize;
        state.lanes[lane].push_back(job);
        state.len += 1;
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job: highest non-empty priority lane first,
    /// FIFO within a lane. Returns `None` only when the queue is draining
    /// *and* empty.
    pub fn pop_blocking(&self) -> Option<u64> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.len > 0 {
                for lane in state.lanes.iter_mut().rev() {
                    if let Some(job) = lane.pop_front() {
                        state.len -= 1;
                        return Some(job);
                    }
                }
                unreachable!("len > 0 implies a non-empty lane");
            }
            if state.draining {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Switches to drain mode: rejects new pushes, wakes all blocked
    /// consumers, and lets them empty the lanes before retiring.
    pub fn drain(&self) {
        self.state.lock().expect("queue lock").draining = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_a_priority() {
        let q = JobQueue::new(8);
        for id in 0..4 {
            q.try_push(id, 1).unwrap();
        }
        assert_eq!(q.depth(), 4);
        for id in 0..4 {
            assert_eq!(q.pop_blocking(), Some(id));
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn higher_priority_preempts_queue_order() {
        let q = JobQueue::new(8);
        q.try_push(10, 0).unwrap();
        q.try_push(11, 2).unwrap();
        q.try_push(12, 3).unwrap();
        q.try_push(13, 2).unwrap();
        assert_eq!(q.pop_blocking(), Some(12));
        assert_eq!(q.pop_blocking(), Some(11));
        assert_eq!(q.pop_blocking(), Some(13));
        assert_eq!(q.pop_blocking(), Some(10));
    }

    #[test]
    fn admission_control_rejects_at_capacity() {
        let q = JobQueue::new(2);
        q.try_push(0, 0).unwrap();
        q.try_push(1, 0).unwrap();
        assert_eq!(q.try_push(2, 0), Err(PushError::Full));
        // Claiming one frees a slot.
        assert_eq!(q.pop_blocking(), Some(0));
        q.try_push(2, 0).unwrap();
    }

    #[test]
    fn out_of_range_priority_is_clamped() {
        let q = JobQueue::new(2);
        q.try_push(7, 200).unwrap();
        q.try_push(8, MAX_PRIORITY).unwrap();
        assert_eq!(q.pop_blocking(), Some(7));
        assert_eq!(q.pop_blocking(), Some(8));
    }

    #[test]
    fn drain_serves_backlog_then_retires_consumers() {
        let q = Arc::new(JobQueue::new(8));
        q.try_push(1, 0).unwrap();
        q.try_push(2, 0).unwrap();
        q.drain();
        assert_eq!(q.try_push(3, 0), Err(PushError::Draining));
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
        assert_eq!(q.pop_blocking(), None);

        // A consumer blocked on an empty queue wakes and retires.
        let q2 = Arc::new(JobQueue::new(8));
        let waiter = {
            let q2 = Arc::clone(&q2);
            thread::spawn(move || q2.pop_blocking())
        };
        thread::sleep(std::time::Duration::from_millis(20));
        q2.drain();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(0, 0).unwrap();
        assert_eq!(q.try_push(1, 0), Err(PushError::Full));
    }
}
