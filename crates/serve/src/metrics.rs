//! Live daemon metrics: lock-free counters, per-engine latency
//! histograms, and aggregated engine profile counters.
//!
//! Counters are plain relaxed atomics — `stats` is a monitoring surface,
//! not a synchronisation point, so torn cross-counter reads (a job
//! counted accepted but not yet completed) are acceptable and documented.
//!
//! The profile totals build on `prop_core::prof`: each worker resets the
//! thread-local counters before a job and folds the per-job snapshot in
//! here afterwards. With the `prof` feature off the snapshots are all
//! zero and the section reports `enabled: false`.

use crate::engine::{EngineKind, ALL_ENGINES};
use crate::json::{self, Json};
use prop_core::prof::ProfSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Histogram buckets: bucket `i` counts jobs with
/// `wall_ms in [2^i - 1, 2^(i+1) - 1)`; the last bucket is open-ended.
pub const LATENCY_BUCKETS: usize = 16;

/// A lock-free log2 latency histogram: one lane of the per-engine
/// `stats` section, and the per-worker latency surface of the
/// coordinator's cluster metrics.
#[derive(Default)]
pub struct LatencyHistogram {
    count: AtomicU64,
    total_ms: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&self, wall_ms: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ms.fetch_add(wall_ms, Ordering::Relaxed);
        self.buckets[bucket_of(wall_ms)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Renders `{count, total_ms, log2_ms_buckets}`.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .map(|b| json::uint(b.load(Ordering::Relaxed)))
            .collect();
        json::obj(vec![
            ("count", json::uint(self.count())),
            ("total_ms", json::uint(self.total_ms.load(Ordering::Relaxed))),
            ("log2_ms_buckets", Json::Arr(buckets)),
        ])
    }
}

/// The daemon-wide metrics registry.
#[derive(Default)]
pub struct Metrics {
    /// Jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Submissions refused because the queue was at capacity.
    pub rejected_full: AtomicU64,
    /// Submissions refused during shutdown drain.
    pub rejected_shutdown: AtomicU64,
    /// Request lines that failed to parse or validate.
    pub malformed: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
    /// Jobs stopped by an explicit cancel.
    pub cancelled: AtomicU64,
    /// Jobs stopped by their deadline.
    pub timed_out: AtomicU64,
    /// Jobs that returned an engine error or panicked.
    pub failed: AtomicU64,
    /// Jobs that ran the recursive k-way driver (`k > 2` or budgeted).
    pub kway: AtomicU64,
    /// Worker panics contained by the pool (a subset of `failed`).
    pub worker_panics: AtomicU64,
    /// Connections accepted since start.
    pub connections: AtomicU64,
    latency: [LatencyHistogram; 5],
    prof: Mutex<ProfSnapshot>,
}

/// The bucket index a latency falls into.
fn bucket_of(wall_ms: u64) -> usize {
    // ilog2(ms + 1), clamped: 0ms→0, 1..=2ms→1, 3..=6ms→2, ...
    (usize::try_from((wall_ms + 1).ilog2()).expect("small log")).min(LATENCY_BUCKETS - 1)
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished job's wall time under its engine.
    pub fn record_latency(&self, engine: EngineKind, wall_ms: u64) {
        self.latency[engine.index()].record(wall_ms);
    }

    /// Folds one job's engine-profile snapshot into the totals.
    pub fn record_prof(&self, snapshot: &ProfSnapshot) {
        let mut total = self.prof.lock().expect("prof totals lock");
        total.seed_ns += snapshot.seed_ns;
        total.refine_ns += snapshot.refine_ns;
        total.select_ns += snapshot.select_ns;
        total.apply_ns += snapshot.apply_ns;
        total.refresh_ns += snapshot.refresh_ns;
        total.moves += snapshot.moves;
        total.net_recomputes += snapshot.net_recomputes;
        total.gain_recomputes += snapshot.gain_recomputes;
        total.ml_coarsen_ns += snapshot.ml_coarsen_ns;
        total.ml_initial_ns += snapshot.ml_initial_ns;
        total.ml_project_ns += snapshot.ml_project_ns;
        total.ml_refine_ns += snapshot.ml_refine_ns;
        total.ml_levels += snapshot.ml_levels;
    }

    /// Renders the full `stats` JSON body.
    pub fn to_json(&self, queue_depth: usize, queue_capacity: usize, draining: bool) -> Json {
        let get = |c: &AtomicU64| json::uint(c.load(Ordering::Relaxed));
        let jobs = json::obj(vec![
            ("accepted", get(&self.accepted)),
            ("rejected_full", get(&self.rejected_full)),
            ("rejected_shutdown", get(&self.rejected_shutdown)),
            ("malformed", get(&self.malformed)),
            ("completed", get(&self.completed)),
            ("cancelled", get(&self.cancelled)),
            ("timed_out", get(&self.timed_out)),
            ("failed", get(&self.failed)),
            ("kway", get(&self.kway)),
            ("worker_panics", get(&self.worker_panics)),
        ]);
        let queue = json::obj(vec![
            ("depth", json::uint(queue_depth as u64)),
            ("capacity", json::uint(queue_capacity as u64)),
            ("draining", Json::Bool(draining)),
        ]);
        let mut engines = Vec::new();
        for kind in ALL_ENGINES {
            let lane = &self.latency[kind.index()];
            if lane.count() == 0 {
                continue;
            }
            engines.push((kind.name(), lane.to_json()));
        }
        let prof = {
            let total = self.prof.lock().expect("prof totals lock");
            json::obj(vec![
                ("enabled", Json::Bool(prop_core::prof::enabled())),
                ("seed_ns", json::uint(total.seed_ns)),
                ("refine_ns", json::uint(total.refine_ns)),
                ("select_ns", json::uint(total.select_ns)),
                ("apply_ns", json::uint(total.apply_ns)),
                ("refresh_ns", json::uint(total.refresh_ns)),
                ("moves", json::uint(total.moves)),
                ("net_recomputes", json::uint(total.net_recomputes)),
                ("gain_recomputes", json::uint(total.gain_recomputes)),
                ("ml_coarsen_ns", json::uint(total.ml_coarsen_ns)),
                ("ml_initial_ns", json::uint(total.ml_initial_ns)),
                ("ml_project_ns", json::uint(total.ml_project_ns)),
                ("ml_refine_ns", json::uint(total.ml_refine_ns)),
                ("ml_levels", json::uint(total.ml_levels)),
            ])
        };
        json::obj(vec![
            ("connections", get(&self.connections)),
            ("jobs", jobs),
            ("queue", queue),
            ("latency", json::obj(engines)),
            ("prof", prof),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(6), 2);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(u64::MAX - 1), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn latency_accumulates_per_engine() {
        let m = Metrics::new();
        m.record_latency(EngineKind::Prop, 5);
        m.record_latency(EngineKind::Prop, 9);
        m.record_latency(EngineKind::Fm, 0);
        let body = m.to_json(2, 8, false);
        let lat = body.get("latency").unwrap();
        let prop = lat.get("prop").unwrap();
        assert_eq!(prop.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(prop.get("total_ms").and_then(Json::as_u64), Some(14));
        let buckets = prop.get("log2_ms_buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets[2].as_u64(), Some(1)); // 5ms
        assert_eq!(buckets[3].as_u64(), Some(1)); // 9ms
        // Engines with no traffic are omitted.
        assert!(lat.get("fm-tree").is_none());
        assert!(lat.get("fm").is_some());
    }

    #[test]
    fn counters_and_queue_render() {
        let m = Metrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.rejected_full.fetch_add(1, Ordering::Relaxed);
        let body = m.to_json(7, 16, true);
        let jobs = body.get("jobs").unwrap();
        assert_eq!(jobs.get("accepted").and_then(Json::as_u64), Some(3));
        assert_eq!(jobs.get("rejected_full").and_then(Json::as_u64), Some(1));
        assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(0));
        let queue = body.get("queue").unwrap();
        assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(7));
        assert_eq!(queue.get("capacity").and_then(Json::as_u64), Some(16));
        assert_eq!(queue.get("draining").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn prof_totals_fold_in() {
        let m = Metrics::new();
        m.record_prof(&ProfSnapshot {
            moves: 10,
            seed_ns: 100,
            ..ProfSnapshot::default()
        });
        m.record_prof(&ProfSnapshot {
            moves: 5,
            gain_recomputes: 2,
            ml_refine_ns: 40,
            ml_levels: 6,
            ..ProfSnapshot::default()
        });
        let prof = m.to_json(0, 1, false);
        let prof = prof.get("prof").unwrap();
        assert_eq!(prof.get("moves").and_then(Json::as_u64), Some(15));
        assert_eq!(prof.get("seed_ns").and_then(Json::as_u64), Some(100));
        assert_eq!(prof.get("gain_recomputes").and_then(Json::as_u64), Some(2));
        assert_eq!(prof.get("ml_refine_ns").and_then(Json::as_u64), Some(40));
        assert_eq!(prof.get("ml_levels").and_then(Json::as_u64), Some(6));
    }
}
