//! A small blocking client for the daemon's wire protocol, used by the
//! CLI `submit` command, the integration tests, and the serve benchmark.

use crate::json::{self, Json};
use crate::wire::{SubmitRequest, UploadRequest};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's response line was not valid protocol JSON (or the
    /// connection closed before a response arrived).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a `prop-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line and reads the one-line JSON response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failures, [`ClientError::Protocol`]
    /// on EOF before a response or an unparseable response line.
    pub fn roundtrip(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection before responding".into(),
            ));
        }
        json::parse(response.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("ping")
    }

    /// Fetches the metrics snapshot.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("stats")
    }

    /// Requests the graceful drain.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("shutdown")
    }

    /// Submits a job (blocking for the result when `request.wait`).
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.render())
    }

    /// Queries a job without blocking.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn status(&mut self, job: u64) -> Result<Json, ClientError> {
        self.roundtrip(&format!("status job={job}"))
    }

    /// Blocks until the job is terminal and returns its final view.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn wait(&mut self, job: u64) -> Result<Json, ClientError> {
        self.roundtrip(&format!("wait job={job}"))
    }

    /// Trips the job's cancellation token.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn cancel(&mut self, job: u64) -> Result<Json, ClientError> {
        self.roundtrip(&format!("cancel job={job}"))
    }

    /// Stores a netlist under a circuit id in the daemon's store.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn upload(&mut self, request: &UploadRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.render())
    }

    /// Lists the circuits in the daemon's store.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn circuits(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("circuits")
    }

    /// Removes a circuit from the daemon's store.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn evict(&mut self, circuit: &str) -> Result<Json, ClientError> {
        self.roundtrip(&format!("evict circuit={circuit}"))
    }
}
