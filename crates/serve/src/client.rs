//! A small blocking client for the daemon's wire protocol, used by the
//! CLI `submit` command, the coordinator's worker dispatchers, the
//! integration tests, and the serve benchmark.

use crate::batch::BatchRequest;
use crate::json::{self, Json};
use crate::wire::{SubmitRequest, UploadRequest};
use std::fmt;
use std::hash::{BuildHasher, RandomState};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The daemon could not be reached within the retry budget — the
    /// typed `connect_failed` error CLI callers print instead of a raw
    /// io error.
    ConnectFailed {
        /// The address dialed.
        addr: String,
        /// Connection attempts made.
        attempts: u32,
        /// The last attempt's socket error.
        last: io::Error,
    },
    /// The server's response line was not valid protocol JSON (or the
    /// connection closed before a response arrived).
    Protocol(String),
}

impl ClientError {
    /// Machine-readable error tag (mirrors the wire's `error` codes).
    pub fn code(&self) -> &'static str {
        match self {
            ClientError::Io(_) => "io",
            ClientError::ConnectFailed { .. } => "connect_failed",
            ClientError::Protocol(_) => "protocol",
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::ConnectFailed {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "connect_failed: cannot reach {addr} after {attempts} attempt{}: {last}",
                if *attempts == 1 { "" } else { "s" }
            ),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Bounded-retry policy for [`Client::connect_retry`]: `attempts` dials
/// with exponential backoff from `base_delay_ms`, each delay jittered so
/// a burst of clients retrying against one recovering daemon does not
/// reconnect in lockstep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnectRetry {
    /// Total connection attempts (≥ 1).
    pub attempts: u32,
    /// Backoff before retry `k` is `base_delay_ms << (k-1)` plus jitter.
    pub base_delay_ms: u64,
}

impl Default for ConnectRetry {
    fn default() -> Self {
        ConnectRetry {
            attempts: 3,
            base_delay_ms: 25,
        }
    }
}

impl ConnectRetry {
    /// A single-attempt policy (no retry, but still the typed error).
    pub fn once() -> Self {
        ConnectRetry {
            attempts: 1,
            base_delay_ms: 0,
        }
    }

    /// The backoff before attempt `attempt + 1` (0-based failed
    /// attempt), jittered by up to the base delay.
    fn delay(&self, addr: &str, attempt: u32) -> Duration {
        let exp = self.base_delay_ms << attempt.min(6);
        // std-only jitter: RandomState seeds each hasher from process
        // entropy, so the low bits vary per process and per attempt.
        let jitter = RandomState::new().hash_one((addr, attempt)) % (self.base_delay_ms + 1);
        Duration::from_millis(exp + jitter)
    }
}

/// A blocking connection to a `prop-serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon with one attempt.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Connects with bounded retry and jittered exponential backoff —
    /// the CLI and coordinator entry point, so a daemon that is still
    /// binding its socket (or briefly restarting) does not fail the
    /// whole command on the first refused connect.
    ///
    /// # Errors
    ///
    /// [`ClientError::ConnectFailed`] once every attempt has failed.
    pub fn connect_retry(addr: &str, retry: &ConnectRetry) -> Result<Self, ClientError> {
        let attempts = retry.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(retry.delay(addr, attempt - 1));
            }
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::ConnectFailed {
            addr: addr.to_string(),
            attempts,
            last: last.expect("at least one attempt"),
        })
    }

    /// Sets the read timeout on the response side of the connection
    /// (`None` blocks indefinitely — the default).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line and reads the one-line JSON response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failures, [`ClientError::Protocol`]
    /// on EOF before a response or an unparseable response line.
    pub fn roundtrip(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_event()
    }

    /// Reads one more JSON line from the server — the `watch` stream's
    /// per-event read.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn read_event(&mut self) -> Result<Json, ClientError> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection before responding".into(),
            ));
        }
        json::parse(response.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("ping")
    }

    /// Fetches the metrics snapshot.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("stats")
    }

    /// Requests the graceful drain.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("shutdown")
    }

    /// Submits a job (blocking for the result when `request.wait`).
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.render())
    }

    /// Submits a sharded sweep to a coordinator.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn batch(&mut self, request: &BatchRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.render())
    }

    /// Streams a batch's progress: sends `watch job=`, hands every
    /// event line to `on_event`, and returns the terminal event (the
    /// `done` line, or the single error object for unknown/non-batch
    /// ids).
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`]; a truncated stream (server gone
    /// mid-watch) surfaces as [`ClientError::Protocol`].
    pub fn watch(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, ClientError> {
        self.writer.write_all(format!("watch job={job}\n").as_bytes())?;
        self.writer.flush()?;
        loop {
            let event = self.read_event()?;
            on_event(&event);
            let terminal = event.get("ok").and_then(Json::as_bool) != Some(true)
                || event.get("event").and_then(Json::as_str) == Some("done");
            if terminal {
                return Ok(event);
            }
        }
    }

    /// Queries a job without blocking.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn status(&mut self, job: u64) -> Result<Json, ClientError> {
        self.roundtrip(&format!("status job={job}"))
    }

    /// Blocks until the job is terminal and returns its final view.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn wait(&mut self, job: u64) -> Result<Json, ClientError> {
        self.roundtrip(&format!("wait job={job}"))
    }

    /// Trips the job's cancellation token.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn cancel(&mut self, job: u64) -> Result<Json, ClientError> {
        self.roundtrip(&format!("cancel job={job}"))
    }

    /// Stores a netlist under a circuit id in the daemon's store.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn upload(&mut self, request: &UploadRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.render())
    }

    /// Lists the circuits in the daemon's store.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn circuits(&mut self) -> Result<Json, ClientError> {
        self.roundtrip("circuits")
    }

    /// Removes a circuit from the daemon's store.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn evict(&mut self, circuit: &str) -> Result<Json, ClientError> {
        self.roundtrip(&format!("evict circuit={circuit}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_retry_reports_the_typed_error() {
        // A port from the dynamic range nothing in the test environment
        // listens on: bind-then-drop guarantees it was just free.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let retry = ConnectRetry {
            attempts: 3,
            base_delay_ms: 1,
        };
        let err = Client::connect_retry(&addr, &retry).unwrap_err();
        assert_eq!(err.code(), "connect_failed");
        let ClientError::ConnectFailed { attempts, addr: a, .. } = &err else {
            panic!("expected ConnectFailed, got {err:?}");
        };
        assert_eq!(*attempts, 3);
        assert_eq!(*a, addr);
        assert!(err.to_string().contains("connect_failed"));
    }

    #[test]
    fn connect_retry_succeeds_against_a_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        Client::connect_retry(&addr, &ConnectRetry::default()).unwrap();
        Client::connect_retry(&addr, &ConnectRetry::once()).unwrap();
    }

    #[test]
    fn backoff_delays_are_bounded() {
        let retry = ConnectRetry {
            attempts: 8,
            base_delay_ms: 10,
        };
        for attempt in 0..16 {
            let d = retry.delay("host:1", attempt);
            // Exponent clamps at 6: 10 << 6 = 640ms, plus ≤10ms jitter.
            assert!(d <= Duration::from_millis(650), "attempt {attempt}: {d:?}");
        }
    }
}
