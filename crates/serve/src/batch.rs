//! Deterministic sweep planning for the coordinator's `batch` verb.
//!
//! One `batch` request names a stored circuit and a sweep over
//! seeds × methods × ε. The planner expands it into an ordered list of
//! **sub-jobs** — each an ordinary `submit` against the same
//! `circuit_id` — and merges the sub-job results back into per-group
//! winners with a total order, so the final answer is bit-identical to
//! running the whole sweep sequentially in one process, no matter how
//! many workers executed it, in what order, or how often sub-jobs were
//! rescheduled after a worker loss.
//!
//! # Why the merge is deterministic
//!
//! A sweep **group** is one (engine, ε) point; its `runs` multi-start
//! runs are split into chunks of `chunk` consecutive runs. Run `r` of a
//! sequential `run_multi` uses seed `base.wrapping_add(r)`, and its
//! winner is the *first* run with the minimum cut. A chunk starting at
//! run offset `o` is submitted as `runs=len seed=base+o`, so the worker
//! executes exactly runs `o..o+len` of the sequential schedule and —
//! by the same `run_multi` rule — reports the chunk's first-minimum as
//! its winner. Merging a group by `(cut, chunk index)` therefore picks
//! the first chunk containing the global first-minimum run, whose
//! reported winner *is* that run. Concatenating `run_cuts` in chunk
//! order reproduces the sequential trajectory, and the winning chunk's
//! `assignment_hash` equals the sequential winner's hash.
//!
//! Across groups (different engines or ε are different optimisation
//! problems, so no sequential-equivalence constraint applies) the batch
//! winner is picked by the total order **(cut, imbalance, sub-job
//! index)** — imbalance breaking cut ties toward the more even
//! partition, the planner-assigned index making the last tie-break
//! structural rather than arrival-ordered.

use crate::engine::EngineKind;
use crate::wire::{SubmitRequest, WireError};

/// Cap on the number of sub-jobs one `batch` request may expand into —
/// bounds the coordinator's per-batch memory against hostile specs.
pub const MAX_SWEEP_SUB_JOBS: usize = 4096;

/// The fields of a `batch` line: a sweep specification.
#[derive(Clone, PartialEq, Debug)]
pub struct BatchRequest {
    /// Stored circuit the whole sweep runs against.
    pub circuit_id: String,
    /// Engines dimension (wire names, e.g. `prop`, `fm`, `ml`).
    pub engines: Vec<String>,
    /// Balance (ε) dimension: `(r1, r2)` ratio pairs.
    pub eps: Vec<(f64, f64)>,
    /// Seeds dimension: multi-start runs per (engine, ε) group.
    pub runs: usize,
    /// Base seed; run `r` of every group uses `seed.wrapping_add(r)`.
    pub seed: u64,
    /// Consecutive runs per sub-job (the sharding grain).
    pub chunk: usize,
    /// Per-sub-job execution deadline in milliseconds; 0 disables it.
    pub timeout_ms: u64,
}

impl Default for BatchRequest {
    fn default() -> Self {
        BatchRequest {
            circuit_id: String::new(),
            engines: vec!["prop".into()],
            eps: vec![(0.45, 0.55)],
            runs: 1,
            seed: 0,
            chunk: 1,
            timeout_ms: 0,
        }
    }
}

/// One (engine, ε) point of the sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepGroup {
    /// Engine wire name.
    pub engine: String,
    /// Lower balance ratio.
    pub r1: f64,
    /// Upper balance ratio.
    pub r2: f64,
}

/// One schedulable unit: a chunk of consecutive runs of one group,
/// rendered as an ordinary `submit` line against the stored circuit.
#[derive(Clone, PartialEq, Debug)]
pub struct SubJob {
    /// Position in the planner's global order (the final tie-breaker).
    pub index: usize,
    /// Index into [`BatchRequest::groups`].
    pub group: usize,
    /// First sequential run index of this chunk within its group.
    pub run_offset: usize,
    /// The submit this sub-job executes on a worker.
    pub request: SubmitRequest,
}

/// The result fields of one executed sub-job, as reported by a worker.
#[derive(Clone, PartialEq, Debug)]
pub struct SubJobOutcome {
    /// Best cut over the chunk's runs.
    pub cut: f64,
    /// Side sizes of the chunk winner.
    pub sides: (usize, usize),
    /// Total passes across the chunk's runs.
    pub passes: usize,
    /// Final cut of each run in the chunk, in run order.
    pub run_cuts: Vec<f64>,
    /// FNV-1a hash of the chunk winner's assignment.
    pub assignment_hash: u64,
}

/// A merged (engine, ε) group: bit-identical to a sequential
/// `run_multi` of the same `runs` and base seed.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupResult {
    /// Engine wire name.
    pub engine: String,
    /// Lower balance ratio.
    pub r1: f64,
    /// Upper balance ratio.
    pub r2: f64,
    /// Best cut over the group's runs.
    pub cut: f64,
    /// Side sizes of the group winner.
    pub sides: (usize, usize),
    /// Total passes across the group's runs.
    pub passes: usize,
    /// Per-run cuts, concatenated in sequential run order.
    pub run_cuts: Vec<f64>,
    /// Assignment hash of the group winner.
    pub assignment_hash: u64,
    /// Global index of the sub-job that produced the winner.
    pub winner_sub_job: usize,
}

impl GroupResult {
    /// `|a - b|` of the winner's side sizes (the cut tie-breaker).
    pub fn imbalance(&self) -> usize {
        self.sides.0.abs_diff(self.sides.1)
    }
}

/// The merged batch: every group plus the overall winner.
#[derive(Clone, PartialEq, Debug)]
pub struct BatchResult {
    /// One merged result per sweep group, in group order.
    pub groups: Vec<GroupResult>,
    /// Index into `groups` of the overall winner under
    /// (cut, imbalance, sub-job index).
    pub best: usize,
}

impl BatchResult {
    /// The overall winning group.
    pub fn winner(&self) -> &GroupResult {
        &self.groups[self.best]
    }
}

impl BatchRequest {
    /// Renders the request as one wire line (without the trailing `\n`).
    pub fn render(&self) -> String {
        let engines = self.engines.join(",");
        let eps = self
            .eps
            .iter()
            .map(|(r1, r2)| format!("{r1}:{r2}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "batch circuit_id={} engines={engines} eps={eps} runs={} seed={} chunk={} timeout_ms={}",
            self.circuit_id, self.runs, self.seed, self.chunk, self.timeout_ms,
        )
    }

    /// Parses the `key=value` fields of a `batch` line.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on unknown fields or engines, bad ratio
    /// pairs, zero runs/chunk, a missing circuit id, or a sweep that
    /// would expand past [`MAX_SWEEP_SUB_JOBS`].
    pub fn parse(fields: &[(&str, &str)]) -> Result<Self, WireError> {
        fn val<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, WireError> {
            v.parse()
                .map_err(|_| WireError::Malformed(format!("bad value {v:?} for {key}")))
        }
        let mut req = BatchRequest::default();
        let mut circuit = None;
        for &(k, v) in fields {
            match k {
                "circuit_id" => circuit = Some(v.to_string()),
                "engines" => {
                    let engines: Vec<String> = v.split(',').map(str::to_string).collect();
                    for name in &engines {
                        if EngineKind::from_name(name).is_none() {
                            return Err(WireError::Malformed(format!(
                                "unknown engine {name:?} in engines list"
                            )));
                        }
                    }
                    req.engines = engines;
                }
                "eps" => {
                    let mut eps = Vec::new();
                    for pair in v.split(',') {
                        let Some((a, b)) = pair.split_once(':') else {
                            return Err(WireError::Malformed(format!(
                                "bad ε pair {pair:?} (use r1:r2)"
                            )));
                        };
                        let r1: f64 = val("eps", a)?;
                        let r2: f64 = val("eps", b)?;
                        if !(r1 > 0.0 && r1 < r2 && r2 < 1.0) {
                            return Err(WireError::Malformed(format!(
                                "ε pair {pair:?} violates 0 < r1 < r2 < 1"
                            )));
                        }
                        eps.push((r1, r2));
                    }
                    req.eps = eps;
                }
                "runs" => req.runs = val(k, v)?,
                "seed" => req.seed = val(k, v)?,
                "chunk" => req.chunk = val(k, v)?,
                "timeout_ms" => req.timeout_ms = val(k, v)?,
                other => return Err(WireError::Malformed(format!("unknown field {other:?}"))),
            }
        }
        req.circuit_id =
            circuit.ok_or_else(|| WireError::Malformed("batch needs circuit_id=<id>".into()))?;
        if req.runs == 0 {
            return Err(WireError::Malformed("runs must be at least 1".into()));
        }
        if req.chunk == 0 {
            return Err(WireError::Malformed("chunk must be at least 1".into()));
        }
        if req.engines.is_empty() || req.eps.is_empty() {
            return Err(WireError::Malformed("engines and eps must be non-empty".into()));
        }
        let chunks_per_group = req.runs.div_ceil(req.chunk);
        let total = req
            .engines
            .len()
            .saturating_mul(req.eps.len())
            .saturating_mul(chunks_per_group);
        if total > MAX_SWEEP_SUB_JOBS {
            return Err(WireError::Malformed(format!(
                "sweep expands to {total} sub-jobs, above the {MAX_SWEEP_SUB_JOBS} cap"
            )));
        }
        Ok(req)
    }

    /// The sweep's (engine, ε) groups, engine-major then ε, in the fixed
    /// order every expansion and merge uses.
    pub fn groups(&self) -> Vec<SweepGroup> {
        let mut groups = Vec::with_capacity(self.engines.len() * self.eps.len());
        for engine in &self.engines {
            for &(r1, r2) in &self.eps {
                groups.push(SweepGroup {
                    engine: engine.clone(),
                    r1,
                    r2,
                });
            }
        }
        groups
    }

    /// Expands the sweep into its ordered sub-job list: groups in
    /// [`BatchRequest::groups`] order, chunks of consecutive runs within
    /// each group. Deterministic — the global `index` is the merge
    /// tie-breaker.
    pub fn expand(&self) -> Vec<SubJob> {
        let mut jobs = Vec::new();
        for (g, group) in self.groups().iter().enumerate() {
            let mut offset = 0;
            while offset < self.runs {
                let len = self.chunk.min(self.runs - offset);
                jobs.push(SubJob {
                    index: jobs.len(),
                    group: g,
                    run_offset: offset,
                    request: SubmitRequest {
                        engine: group.engine.clone(),
                        runs: len,
                        seed: self.seed.wrapping_add(offset as u64),
                        r1: group.r1,
                        r2: group.r2,
                        timeout_ms: self.timeout_ms,
                        circuit_id: self.circuit_id.clone(),
                        wait: true,
                        ..SubmitRequest::default()
                    },
                });
                offset += len;
            }
        }
        jobs
    }

    /// Total runs across the whole sweep.
    pub fn total_runs(&self) -> usize {
        self.engines.len() * self.eps.len() * self.runs
    }
}

/// Merges completed sub-job outcomes back into per-group winners and an
/// overall batch winner. `outcomes[i]` must be the result of `jobs[i]`;
/// `jobs` must be one batch's full [`BatchRequest::expand`] output.
///
/// Within a group the winner is the first sub-job (planner order) with
/// the minimum cut — the rule that makes the merge bit-identical to a
/// sequential `run_multi` (see the module docs). Across groups the
/// winner is the minimum under (cut, imbalance, sub-job index).
pub fn merge(spec: &BatchRequest, jobs: &[SubJob], outcomes: &[SubJobOutcome]) -> BatchResult {
    assert_eq!(jobs.len(), outcomes.len(), "one outcome per sub-job");
    let mut groups: Vec<GroupResult> = spec
        .groups()
        .into_iter()
        .map(|g| GroupResult {
            engine: g.engine,
            r1: g.r1,
            r2: g.r2,
            cut: f64::INFINITY,
            sides: (0, 0),
            passes: 0,
            run_cuts: Vec::new(),
            assignment_hash: 0,
            winner_sub_job: usize::MAX,
        })
        .collect();
    for (job, outcome) in jobs.iter().zip(outcomes) {
        let group = &mut groups[job.group];
        group.run_cuts.extend_from_slice(&outcome.run_cuts);
        group.passes += outcome.passes;
        // Strictly-lower wins; ties keep the earlier sub-job. Jobs
        // arrive here in planner order, so this is (cut, chunk index).
        if outcome.cut < group.cut {
            group.cut = outcome.cut;
            group.sides = outcome.sides;
            group.assignment_hash = outcome.assignment_hash;
            group.winner_sub_job = job.index;
        }
    }
    let best = groups
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.cut
                .total_cmp(&b.cut)
                .then(a.imbalance().cmp(&b.imbalance()))
                .then(a.winner_sub_job.cmp(&b.winner_sub_job))
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    BatchResult { groups, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use prop_core::{BalanceConstraint, CancelToken};
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn spec() -> BatchRequest {
        BatchRequest {
            circuit_id: "c".into(),
            engines: vec!["fm".into(), "prop".into()],
            eps: vec![(0.45, 0.55), (0.4, 0.6)],
            runs: 8,
            seed: 41,
            chunk: 3,
            timeout_ms: 0,
        }
    }

    #[test]
    fn expansion_is_ordered_and_complete() {
        let spec = spec();
        let jobs = spec.expand();
        // 2 engines × 2 ε × ceil(8/3) chunks.
        assert_eq!(jobs.len(), 2 * 2 * 3);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
            assert_eq!(job.request.circuit_id, "c");
            assert!(job.request.wait);
            assert_eq!(job.request.seed, 41 + job.run_offset as u64);
        }
        // Group run counts partition the sweep's runs exactly.
        for g in 0..4 {
            let total: usize = jobs
                .iter()
                .filter(|j| j.group == g)
                .map(|j| j.request.runs)
                .sum();
            assert_eq!(total, 8);
        }
        assert_eq!(spec.total_runs(), 32);
        // Engine-major group order.
        let groups = spec.groups();
        assert_eq!(groups[0].engine, "fm");
        assert_eq!(groups[1].engine, "fm");
        assert_eq!((groups[1].r1, groups[1].r2), (0.4, 0.6));
        assert_eq!(groups[2].engine, "prop");
    }

    /// The planner's core promise: executing the expansion chunk by
    /// chunk and merging reproduces one sequential `run_multi` per
    /// group bit for bit, at every chunk size.
    #[test]
    fn merge_is_bit_identical_to_sequential_run_multi() {
        let graph = generate(&GeneratorConfig::new(60, 70, 240).with_seed(9)).unwrap();
        let token = CancelToken::new();
        for chunk in [1, 2, 3, 5, 8] {
            let spec = BatchRequest {
                chunk,
                ..spec()
            };
            let jobs = spec.expand();
            let outcomes: Vec<SubJobOutcome> = jobs
                .iter()
                .map(|job| {
                    let r = &job.request;
                    let kind = EngineKind::from_name(&r.engine).unwrap();
                    let balance =
                        BalanceConstraint::weighted(r.r1, r.r2, &graph).unwrap();
                    let report = engine::execute_with(
                        kind,
                        &graph,
                        balance,
                        r.runs,
                        r.seed,
                        &token,
                        r.ml_config(),
                    )
                    .unwrap();
                    SubJobOutcome {
                        cut: report.result.cut_cost,
                        sides: (
                            report.result.partition.count(prop_core::Side::A),
                            report.result.partition.count(prop_core::Side::B),
                        ),
                        passes: report.result.total_passes,
                        run_cuts: report.result.run_cuts.clone(),
                        assignment_hash: engine::assignment_hash(
                            report.result.partition.sides(),
                        ),
                    }
                })
                .collect();
            let merged = merge(&spec, &jobs, &outcomes);
            for (g, group) in spec.groups().iter().enumerate() {
                let kind = EngineKind::from_name(&group.engine).unwrap();
                let balance =
                    BalanceConstraint::weighted(group.r1, group.r2, &graph).unwrap();
                let direct = engine::execute(kind, &graph, balance, spec.runs, spec.seed, &token)
                    .unwrap();
                let got = &merged.groups[g];
                assert_eq!(got.cut, direct.result.cut_cost, "chunk={chunk} group={g}");
                assert_eq!(got.run_cuts, direct.result.run_cuts, "chunk={chunk} group={g}");
                assert_eq!(
                    got.assignment_hash,
                    engine::assignment_hash(direct.result.partition.sides()),
                    "chunk={chunk} group={g}"
                );
                assert_eq!(got.passes, direct.result.total_passes);
            }
            // The overall winner obeys (cut, imbalance, sub-job index).
            let w = merged.winner();
            for g in &merged.groups {
                assert!(
                    w.cut < g.cut
                        || (w.cut == g.cut && w.imbalance() < g.imbalance())
                        || (w.cut == g.cut
                            && w.imbalance() == g.imbalance()
                            && w.winner_sub_job <= g.winner_sub_job)
                );
            }
        }
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let spec = spec();
        let line = spec.render();
        let fields: Vec<(&str, &str)> = line
            .split(' ')
            .skip(1)
            .map(|t| t.split_once('=').unwrap())
            .collect();
        assert_eq!(BatchRequest::parse(&fields).unwrap(), spec);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let cases: &[&[(&str, &str)]] = &[
            &[],                                        // no circuit
            &[("circuit_id", "c"), ("runs", "0")],      // zero runs
            &[("circuit_id", "c"), ("chunk", "0")],     // zero chunk
            &[("circuit_id", "c"), ("engines", "sa2")], // unknown engine
            &[("circuit_id", "c"), ("eps", "0.45")],    // not a pair
            &[("circuit_id", "c"), ("eps", "0.6:0.4")], // inverted
            &[("circuit_id", "c"), ("eps", "0:0.5")],   // r1 out of range
            &[("circuit_id", "c"), ("bogus", "1")],     // unknown field
            &[("circuit_id", "c"), ("runs", "9999"), ("chunk", "1")], // over cap
        ];
        for fields in cases {
            assert!(BatchRequest::parse(fields).is_err(), "{fields:?}");
        }
    }
}
