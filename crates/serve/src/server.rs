//! The daemon itself: listener, connection handlers, and the worker pool.
//!
//! Threading model:
//!
//! * one accept thread, nonblocking with a short poll sleep so it can
//!   observe the shutdown flag;
//! * one detached handler thread per connection, reading line-delimited
//!   requests under the configured size cap and a generous idle timeout;
//! * `workers` pool threads, each blocking on the job queue, arming the
//!   job's deadline, installing its cancellation token, and running the
//!   engine under `catch_unwind` so a panicking job fails that job — not
//!   the daemon.
//!
//! Shutdown (the `shutdown` verb or [`ServerHandle::shutdown`]) is
//! graceful: the listener stops accepting, new submits are refused with
//! `shutting_down`, queued jobs drain, and [`ServerHandle::join`] returns
//! once every worker has retired.

use crate::batch::BatchRequest;
use crate::cluster::{ClusterConfig, Coordinator};
use crate::engine::{self, EngineKind};
use crate::job::{JobOutcome, JobStatus, JobTable, JobView};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::queue::{JobQueue, PushError};
use crate::store::CircuitStore;
use crate::wire::{self, Request, SubmitRequest, UploadRequest, WireError, DEFAULT_MAX_REQUEST_BYTES};
use prop_core::{prof, BalanceConstraint, CancelToken, RunStatus, Side};
use prop_netlist::{hgb, Hypergraph};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker pool size (minimum 1).
    pub workers: usize,
    /// Job-queue admission capacity.
    pub queue_cap: usize,
    /// Per-request line cap in bytes.
    pub max_request_bytes: usize,
    /// Directory for the named-circuit store (`upload` / `circuits` /
    /// `evict`, `submit circuit_id=`). `None` disables the store verbs.
    pub store_dir: Option<String>,
    /// Coordinator mode: the worker set and health/retry knobs for the
    /// `batch` / `watch` verbs. `None` runs a plain single-node daemon.
    /// Requires `store_dir` (batches reference stored circuits).
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            store_dir: None,
            cluster: None,
        }
    }
}

struct Shared {
    queue: JobQueue,
    jobs: JobTable,
    metrics: Metrics,
    shutdown: AtomicBool,
    store: Option<CircuitStore>,
    cluster: Option<Coordinator>,
}

/// A running daemon; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or send the `shutdown` verb) first.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates the graceful drain from this process (equivalent to the
    /// wire `shutdown` verb). Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.drain();
        if let Some(cluster) = self.shared.cluster.as_ref() {
            cluster.stop();
        }
    }

    /// Blocks until the accept thread and every worker have retired —
    /// i.e. until a shutdown was requested *and* the queue fully drained.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the accept or worker threads (the worker
    /// body is itself panic-contained, so this indicates a daemon bug).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    if let Some(cluster) = &config.cluster {
        // Batches reference stored circuits and the coordinator ships
        // snapshots worker-to-worker, so both requirements are structural.
        if config.store_dir.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "coordinator mode requires a circuit store (set store_dir / --store-dir)",
            ));
        }
        if cluster.workers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "coordinator mode requires at least one worker address",
            ));
        }
    }
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: JobQueue::new(config.queue_cap),
        jobs: JobTable::new(),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        store: config.store_dir.as_deref().map(CircuitStore::new),
        cluster: config.cluster.clone().map(Coordinator::new),
    });

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("prop-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        let max_bytes = config.max_request_bytes;
        thread::Builder::new()
            .name("prop-serve-accept".into())
            .spawn(move || accept_loop(&listener, &shared, max_bytes))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, max_bytes: usize) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                // Detached: a handler blocked in `wait` must not delay
                // other connections or the drain.
                let _ = thread::Builder::new()
                    .name("prop-serve-conn".into())
                    .spawn(move || handle_connection(stream, &shared, max_bytes));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn ok_obj(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    json::obj(all)
}

fn err_obj(code: &str, message: &str) -> Json {
    json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", json::str(code)),
        ("message", json::str(message)),
    ])
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, max_bytes: usize) {
    let _ = stream.set_nodelay(true);
    // Idle connections are reaped; an in-flight `wait` blocks server-side
    // between reads, so long jobs are unaffected.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let response = match wire::read_request_line(&mut reader, max_bytes) {
            Ok(None) => break,
            Ok(bytes) => {
                let bytes = bytes.unwrap_or_default();
                match std::str::from_utf8(&bytes) {
                    Err(_) => {
                        shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                        err_obj("malformed", &WireError::NotUtf8.to_string())
                    }
                    Ok(line) => match wire::parse_request(line) {
                        Err(e) => {
                            shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                            err_obj("malformed", &e.to_string())
                        }
                        // The one multi-line response: stream batch
                        // events directly, then keep the connection.
                        Ok(Request::Watch { job }) => {
                            if stream_watch(job, shared, &mut writer).is_err() {
                                break;
                            }
                            continue;
                        }
                        Ok(request) => handle_request(request, shared),
                    },
                }
            }
            Err(e @ WireError::TooLarge { .. }) => {
                // Framing is lost: answer once, then drop the connection.
                shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                let body = err_obj("too_large", &e.to_string());
                let _ = writeln!(writer, "{}", body.render());
                break;
            }
            // Premature disconnect or read timeout: clean drop.
            Err(_) => break,
        };
        if writeln!(writer, "{}", response.render()).is_err() {
            break;
        }
    }
}

fn handle_request(request: Request, shared: &Arc<Shared>) -> Json {
    match request {
        Request::Ping => ok_obj(vec![("pong", Json::Bool(true))]),
        Request::Stats => {
            let mut body = shared.metrics.to_json(
                shared.queue.depth(),
                shared.queue.capacity(),
                shared.shutdown.load(Ordering::SeqCst),
            );
            if let Some(cluster) = shared.cluster.as_ref() {
                if let Json::Obj(fields) = &mut body {
                    fields.push(("cluster".to_string(), cluster.stats_json()));
                }
            }
            ok_obj(vec![("stats", body)])
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.drain();
            if let Some(cluster) = shared.cluster.as_ref() {
                cluster.stop();
            }
            ok_obj(vec![("draining", Json::Bool(true))])
        }
        Request::Submit(submit) => handle_submit(submit, shared),
        Request::Batch(spec) => handle_batch(spec, shared),
        // Intercepted by the connection loop (the one streaming verb);
        // reachable only through direct library calls.
        Request::Watch { job } => match shared.cluster.as_ref().and_then(|c| c.batch(job)) {
            Some(batch) => batch.view(),
            None => err_obj("unknown_job", &format!("no batch {job}")),
        },
        Request::Status { job } => {
            if let Some(batch) = shared.cluster.as_ref().and_then(|c| c.batch(job)) {
                return batch.view();
            }
            match shared.jobs.view(job) {
                None => err_obj("unknown_job", &format!("no job {job}")),
                Some(view) => view_json(job, &view),
            }
        }
        Request::Wait { job } => {
            if let Some(batch) = shared.cluster.as_ref().and_then(|c| c.batch(job)) {
                return batch.wait_view();
            }
            match shared.jobs.wait(job) {
                None => err_obj("unknown_job", &format!("no job {job}")),
                Some(view) => view_json(job, &view),
            }
        }
        Request::Cancel { job } => {
            let hit_batch = shared.cluster.as_ref().is_some_and(|c| c.cancel(job));
            if hit_batch || shared.jobs.cancel(job) {
                ok_obj(vec![("job", json::uint(job)), ("cancelled", Json::Bool(true))])
            } else {
                err_obj("unknown_job", &format!("no job {job}"))
            }
        }
        Request::Upload(upload) => handle_upload(upload, shared),
        Request::Circuits => match require_store(shared) {
            Err(resp) => resp,
            Ok(store) => match store.list() {
                Err(e) => err_obj(e.code(), &e.to_string()),
                Ok(list) => ok_obj(vec![(
                    "circuits",
                    Json::Arr(
                        list.iter()
                            .map(|c| {
                                json::obj(vec![
                                    ("id", json::str(&c.id)),
                                    ("nodes", json::uint(c.nodes)),
                                    ("nets", json::uint(c.nets)),
                                    ("pins", json::uint(c.pins)),
                                    ("bytes", json::uint(c.bytes)),
                                    ("cached", Json::Bool(c.cached)),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            },
        },
        Request::Evict { circuit } => match require_store(shared) {
            Err(resp) => resp,
            Ok(store) => match store.evict(&circuit) {
                Ok(existed) => ok_obj(vec![
                    ("circuit", json::str(&circuit)),
                    ("evicted", Json::Bool(existed)),
                ]),
                Err(e) => err_obj(e.code(), &e.to_string()),
            },
        },
    }
}

/// Streams a batch's event log: replay from the start, then follow live
/// until the terminal `done` event. Unknown ids and non-coordinator
/// daemons get a single error line (the connection stays usable).
/// `Err` means the client went away mid-stream — drop the connection.
fn stream_watch(job: u64, shared: &Arc<Shared>, writer: &mut TcpStream) -> Result<(), ()> {
    let batch = match shared.cluster.as_ref() {
        None => {
            let body = err_obj(
                "not_coordinator",
                "watch requires a coordinator daemon (serve --coordinator)",
            );
            return writeln!(writer, "{}", body.render()).map_err(|_| ());
        }
        Some(cluster) => match cluster.batch(job) {
            Some(batch) => batch,
            None => {
                let body = err_obj("unknown_job", &format!("no batch {job}"));
                return writeln!(writer, "{}", body.render()).map_err(|_| ());
            }
        },
    };
    let mut next = 0;
    while let Some(event) = batch.event(next) {
        writeln!(writer, "{}", event.render()).map_err(|_| ())?;
        next += 1;
    }
    Ok(())
}

/// Admits a `batch`: snapshot + pin the circuit, reserve a job id, and
/// hand the sweep to the coordinator's dispatchers.
fn handle_batch(spec: BatchRequest, shared: &Arc<Shared>) -> Json {
    let Some(cluster) = shared.cluster.as_ref() else {
        return err_obj(
            "not_coordinator",
            "batch requires a coordinator daemon (serve --coordinator --workers host:port,...)",
        );
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        shared
            .metrics
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return err_obj("shutting_down", "daemon is draining; not accepting batches");
    }
    let store = match require_store(shared) {
        Ok(store) => store,
        Err(resp) => return resp,
    };
    // Snapshot before pin: both fail with the same typed errors, and a
    // failed admission must leave no pin behind.
    let snapshot = match store.snapshot_bytes(&spec.circuit_id) {
        Ok(bytes) => bytes,
        Err(e) => return err_obj(e.code(), &e.to_string()),
    };
    if let Err(e) = store.pin(&spec.circuit_id) {
        return err_obj(e.code(), &e.to_string());
    }
    let id = shared.jobs.reserve();
    let unpin = {
        let shared = Arc::clone(shared);
        let circuit = spec.circuit_id.clone();
        Box::new(move || {
            if let Some(store) = shared.store.as_ref() {
                store.unpin(&circuit);
            }
        })
    };
    let sub_jobs = cluster.submit_batch(id, spec, snapshot, unpin);
    shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
    ok_obj(vec![
        ("job", json::uint(id)),
        ("batch", Json::Bool(true)),
        ("sub_jobs", json::uint(sub_jobs as u64)),
        ("queued", Json::Bool(true)),
    ])
}

fn require_store(shared: &Arc<Shared>) -> Result<&CircuitStore, Json> {
    shared.store.as_ref().ok_or_else(|| {
        err_obj(
            "store_disabled",
            "daemon started without a circuit store (set store_dir / --store-dir)",
        )
    })
}

/// Decodes an uploaded netlist — inline bytes in the declared format, or
/// a daemon-local file picked by extension — into a hypergraph.
fn ingest_upload(upload: &UploadRequest) -> Result<Hypergraph, (&'static str, String)> {
    if let Some(payload) = &upload.payload {
        return parse_circuit_bytes(&upload.fmt, payload)
            .map_err(|m| ("invalid_netlist", m));
    }
    let path = upload.path.as_deref().unwrap_or_default();
    let fmt = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    if fmt == "hgb" {
        // The mmap fast path: the snapshot is validated and materialized
        // without an intermediate copy of the file.
        return match hgb::load_hgb(Path::new(path)) {
            Ok((graph, _report)) => Ok(graph),
            Err(hgb::HgbLoadError::Io(e)) => Err(("store_io", format!("{path}: {e}"))),
            Err(hgb::HgbLoadError::Format(e)) => Err(("invalid_netlist", e.to_string())),
        };
    }
    let bytes = std::fs::read(path).map_err(|e| ("store_io", format!("{path}: {e}")))?;
    parse_circuit_bytes(fmt, &bytes).map_err(|m| ("invalid_netlist", m))
}

fn parse_circuit_bytes(fmt: &str, bytes: &[u8]) -> Result<Hypergraph, String> {
    match fmt {
        "hgb" => hgb::parse_hgb(bytes).map_err(|e| e.to_string()),
        "hgr" | "netd" => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| format!("{fmt} payload is not valid UTF-8"))?;
            engine::parse_payload(fmt, text)
        }
        other => Err(format!("unknown netlist format {other:?} (use hgr, netd, or hgb)")),
    }
}

fn handle_upload(upload: UploadRequest, shared: &Arc<Shared>) -> Json {
    let store = match require_store(shared) {
        Ok(store) => store,
        Err(resp) => return resp,
    };
    let graph = match ingest_upload(&upload) {
        Ok(graph) => graph,
        Err((code, message)) => {
            shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
            return err_obj(code, &message);
        }
    };
    match store.put(&upload.circuit, graph) {
        Ok(info) => ok_obj(vec![
            ("circuit", json::str(&info.id)),
            ("nodes", json::uint(info.nodes)),
            ("nets", json::uint(info.nets)),
            ("pins", json::uint(info.pins)),
            ("bytes", json::uint(info.bytes)),
        ]),
        Err(e) => err_obj(e.code(), &e.to_string()),
    }
}

fn handle_submit(submit: SubmitRequest, shared: &Arc<Shared>) -> Json {
    if EngineKind::from_name(&submit.engine).is_none() {
        shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
        return err_obj(
            "unknown_engine",
            &format!("unknown engine {:?} (use prop, prop-paper, fm, fm-tree, ml)", submit.engine),
        );
    }
    let circuit_id = submit.circuit_id.clone();
    if !circuit_id.is_empty() {
        // The admission probe doubles as the eviction pin: a typo'd id
        // is refused here (not minutes later as a failed job), and a
        // valid one cannot be evicted out from under the queued job.
        let store = match require_store(shared) {
            Ok(store) => store,
            Err(resp) => return resp,
        };
        if let Err(e) = store.pin(&circuit_id) {
            return err_obj(e.code(), &e.to_string());
        }
    }
    let unpin = |shared: &Arc<Shared>| {
        if !circuit_id.is_empty() {
            if let Some(store) = shared.store.as_ref() {
                store.unpin(&circuit_id);
            }
        }
    };
    let priority = submit.priority;
    let wait = submit.wait;
    let id = shared.jobs.insert(submit);
    match shared.queue.try_push(id, priority) {
        Ok(()) => {
            shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            if wait {
                match shared.jobs.wait(id) {
                    Some(view) => view_json(id, &view),
                    None => err_obj("unknown_job", &format!("no job {id}")),
                }
            } else {
                ok_obj(vec![("job", json::uint(id)), ("queued", Json::Bool(true))])
            }
        }
        Err(PushError::Full) => {
            unpin(shared);
            shared.jobs.forget(id);
            shared.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
            err_obj("queue_full", "job queue at capacity; retry later")
        }
        Err(PushError::Draining) => {
            unpin(shared);
            shared.jobs.forget(id);
            shared
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            err_obj("shutting_down", "daemon is draining; not accepting jobs")
        }
    }
}

fn view_json(id: u64, view: &JobView) -> Json {
    let mut fields = vec![
        ("job", json::uint(id)),
        ("phase", json::str(view.phase.name())),
        ("cancel_requested", Json::Bool(view.cancel_requested)),
    ];
    if let Some(outcome) = &view.outcome {
        fields.push(("status", json::str(outcome.status.name())));
        if let Some(error) = &outcome.error {
            fields.push(("message", json::str(error)));
        }
        if let Some(cut) = outcome.cut {
            fields.push(("cut", json::num(cut)));
        }
        if let Some(k) = outcome.k {
            fields.push(("k", json::uint(u64::from(k))));
            fields.push((
                "part_weights",
                Json::Arr(outcome.part_weights.iter().map(|&w| json::num(w)).collect()),
            ));
            if let Some(connectivity) = outcome.connectivity {
                fields.push(("connectivity", json::num(connectivity)));
            }
        } else {
            fields.push((
                "sides",
                Json::Arr(vec![
                    json::uint(outcome.sides.0 as u64),
                    json::uint(outcome.sides.1 as u64),
                ]),
            ));
        }
        fields.push(("passes", json::uint(outcome.passes as u64)));
        fields.push((
            "run_cuts",
            Json::Arr(outcome.run_cuts.iter().map(|&c| json::num(c)).collect()),
        ));
        if let Some(hash) = outcome.assignment_hash {
            fields.push(("assignment_hash", json::hex64(hash)));
        }
        fields.push(("started_runs", json::uint(outcome.started_runs as u64)));
        fields.push(("wall_ms", json::uint(outcome.wall_ms)));
    }
    ok_obj(fields)
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop_blocking() {
        let Some((work, token)) = shared.jobs.take_work(id) else {
            continue;
        };
        let start = Instant::now();
        if work.timeout_ms > 0 {
            token.set_timeout(Duration::from_millis(work.timeout_ms));
        }
        prof::reset();
        let ran = catch_unwind(AssertUnwindSafe(|| {
            run_job(&work, &token, shared.store.as_ref())
        }));
        shared.metrics.record_prof(&prof::snapshot());
        let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);

        let outcome = match ran {
            Ok(Ok((kind, JobDone::Kway { status, cut, connectivity, k, part_weights, passes, hash }))) => {
                shared.metrics.record_latency(kind, wall_ms);
                shared.metrics.kway.fetch_add(1, Ordering::Relaxed);
                let status = job_status(status, shared, id);
                status_counter(status, shared).fetch_add(1, Ordering::Relaxed);
                JobOutcome {
                    status,
                    error: None,
                    cut: Some(cut),
                    sides: (0, 0),
                    passes,
                    run_cuts: Vec::new(),
                    assignment_hash: Some(hash),
                    started_runs: 0,
                    wall_ms,
                    k: Some(k),
                    part_weights,
                    connectivity: Some(connectivity),
                }
            }
            Ok(Ok((kind, JobDone::TwoWay(report)))) => {
                shared.metrics.record_latency(kind, wall_ms);
                let status = job_status(report.status, shared, id);
                status_counter(status, shared).fetch_add(1, Ordering::Relaxed);
                let result = report.result;
                JobOutcome {
                    status,
                    error: None,
                    cut: Some(result.cut_cost),
                    sides: (
                        result.partition.count(Side::A),
                        result.partition.count(Side::B),
                    ),
                    passes: result.total_passes,
                    run_cuts: result.run_cuts,
                    assignment_hash: Some(engine::assignment_hash(result.partition.sides())),
                    started_runs: report.started_runs,
                    wall_ms,
                    k: None,
                    part_weights: Vec::new(),
                    connectivity: None,
                }
            }
            Ok(Err(message)) => {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                JobOutcome::failed(message, wall_ms)
            }
            Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                JobOutcome::failed("worker panicked while running the job", wall_ms)
            }
        };
        // Release the admission-time eviction pin before publishing the
        // terminal state: a client that saw the job complete must be able
        // to evict the circuit immediately.
        if !work.circuit_id.is_empty() {
            if let Some(store) = shared.store.as_ref() {
                store.unpin(&work.circuit_id);
            }
        }
        shared.jobs.finish(id, outcome);
    }
}

/// What a worker produced: the classic bipartition report, or a k-way
/// summary precomputed while the graph was still in scope.
enum JobDone {
    TwoWay(prop_core::MultiRunReport),
    Kway {
        status: RunStatus,
        cut: f64,
        connectivity: f64,
        k: u32,
        part_weights: Vec<f64>,
        passes: usize,
        hash: u64,
    },
}

/// Maps an engine's run status to the job's terminal status: the token
/// trips for both explicit cancels and deadlines; the table knows which
/// one it was.
fn job_status(status: RunStatus, shared: &Arc<Shared>, id: u64) -> JobStatus {
    match status {
        RunStatus::Completed => JobStatus::Completed,
        RunStatus::Cancelled if shared.jobs.cancel_requested(id) => JobStatus::Cancelled,
        RunStatus::Cancelled => JobStatus::TimedOut,
    }
}

/// The metrics counter a terminal status increments.
fn status_counter(status: JobStatus, shared: &Arc<Shared>) -> &AtomicU64 {
    match status {
        JobStatus::Completed => &shared.metrics.completed,
        JobStatus::Cancelled => &shared.metrics.cancelled,
        JobStatus::TimedOut => &shared.metrics.timed_out,
        JobStatus::Failed => &shared.metrics.failed,
    }
}

fn run_job(
    work: &SubmitRequest,
    token: &CancelToken,
    store: Option<&CircuitStore>,
) -> Result<(EngineKind, JobDone), String> {
    let kind = EngineKind::from_name(&work.engine)
        .ok_or_else(|| format!("unknown engine {:?}", work.engine))?;
    // A stored circuit is shared by every job of a sweep through one
    // cached `Arc`; an inline payload is parsed per job.
    let graph: Arc<Hypergraph> = if work.circuit_id.is_empty() {
        Arc::new(engine::parse_payload(&work.fmt, &work.payload)?)
    } else {
        store
            .ok_or_else(|| "daemon has no circuit store".to_string())?
            .get(&work.circuit_id)
            .map_err(|e| e.to_string())?
    };
    let graph = &*graph;
    // `k > 2` (or any budget vector) routes through the recursive k-way
    // driver; the default `k = 2` uniform job keeps the classic
    // bipartition path bit-for-bit.
    if work.k > 2 || !work.budgets.is_empty() {
        let budgets = (!work.budgets.is_empty()).then(|| work.budgets.clone());
        let report = engine::execute_kway(
            kind,
            graph,
            work.k,
            budgets,
            work.r1,
            work.r2,
            work.runs,
            work.seed,
            token,
            work.ml_config(),
        )
        .map_err(|e| e.to_string())?;
        let done = JobDone::Kway {
            status: report.status,
            cut: report.partition.cut_cost(graph),
            connectivity: report.partition.connectivity_cost(graph),
            k: u32::try_from(work.k).map_err(|_| "k overflows u32".to_string())?,
            part_weights: report.partition.part_weights().to_vec(),
            passes: report.total_passes,
            hash: engine::kway_assignment_hash(report.partition.assignment()),
        };
        return Ok((kind, done));
    }
    let balance =
        BalanceConstraint::weighted(work.r1, work.r2, graph).map_err(|e| e.to_string())?;
    engine::execute_with(
        kind,
        graph,
        balance,
        work.runs,
        work.seed,
        token,
        work.ml_config(),
    )
    .map(|report| (kind, JobDone::TwoWay(report)))
    .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use prop_netlist::format;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn tiny_payload() -> String {
        let g = generate(&GeneratorConfig::new(24, 28, 96).with_seed(11)).unwrap();
        format::write_hgr(&g)
    }

    fn start_test_server(workers: usize, queue_cap: usize) -> ServerHandle {
        start(&ServerConfig {
            workers,
            queue_cap,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral server")
    }

    #[test]
    fn ping_stats_and_graceful_shutdown() {
        let handle = start_test_server(1, 4);
        let mut client = Client::connect(handle.addr()).unwrap();
        let pong = client.ping().unwrap();
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

        let stats = client.stats().unwrap();
        let body = stats.get("stats").unwrap();
        assert_eq!(
            body.get("queue").and_then(|q| q.get("capacity")).and_then(Json::as_u64),
            Some(4)
        );

        let resp = client.shutdown().unwrap();
        assert_eq!(resp.get("draining").and_then(Json::as_bool), Some(true));
        handle.join();
    }

    #[test]
    fn submit_wait_runs_a_job_end_to_end() {
        let handle = start_test_server(2, 8);
        let mut client = Client::connect(handle.addr()).unwrap();
        let req = SubmitRequest {
            engine: "fm".into(),
            runs: 2,
            seed: 5,
            payload: tiny_payload(),
            wait: true,
            ..SubmitRequest::default()
        };
        let resp = client.submit(&req).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("completed"));
        assert!(resp.get("cut").and_then(Json::as_f64).is_some());
        assert_eq!(
            resp.get("run_cuts").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn submit_then_poll_status_and_wait() {
        let handle = start_test_server(1, 8);
        let mut client = Client::connect(handle.addr()).unwrap();
        let req = SubmitRequest {
            engine: "prop".into(),
            payload: tiny_payload(),
            ..SubmitRequest::default()
        };
        let resp = client.submit(&req).unwrap();
        let job = resp.get("job").and_then(Json::as_u64).unwrap();
        let done = client.wait(job).unwrap();
        assert_eq!(done.get("phase").and_then(Json::as_str), Some("done"));
        let again = client.status(job).unwrap();
        assert_eq!(again.get("status").and_then(Json::as_str), Some("completed"));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn queue_full_and_shutdown_rejections() {
        // One worker, capacity 1: park a job, fill the queue, overflow.
        let handle = start_test_server(1, 1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let slow = SubmitRequest {
            engine: "prop".into(),
            runs: 12,
            payload: tiny_payload(),
            ..SubmitRequest::default()
        };
        let first = client.submit(&slow).unwrap();
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        // Eventually the worker is busy and one more fills the queue; keep
        // submitting until a rejection shows up.
        let mut saw_reject = false;
        for _ in 0..50 {
            let resp = client.submit(&slow).unwrap();
            if resp.get("error").and_then(Json::as_str) == Some("queue_full") {
                saw_reject = true;
                break;
            }
        }
        assert!(saw_reject, "queue never reported full");

        client.shutdown().unwrap();
        let resp = client.submit(&slow).unwrap();
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("shutting_down"));
        handle.join();
    }

    #[test]
    fn unknown_engine_and_unknown_job_errors() {
        let handle = start_test_server(1, 4);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client
            .submit(&SubmitRequest {
                engine: "quantum".into(),
                payload: "2 2\n1 2\n1 2\n".into(),
                ..SubmitRequest::default()
            })
            .unwrap();
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("unknown_engine"));
        let resp = client.status(999).unwrap();
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("unknown_job"));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn store_verbs_require_a_store_dir() {
        let handle = start_test_server(1, 4);
        let mut client = Client::connect(handle.addr()).unwrap();
        for line in [
            "circuits",
            "evict circuit=x",
            "upload circuit=x payload=abc",
            "submit engine=prop circuit_id=x",
        ] {
            let resp = client.roundtrip(line).unwrap();
            assert_eq!(
                resp.get("error").and_then(Json::as_str),
                Some("store_disabled"),
                "{line}"
            );
        }
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn upload_once_submit_by_id_matches_inline() {
        let dir = std::env::temp_dir().join(format!("prop-serve-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let handle = start(&ServerConfig {
            workers: 2,
            queue_cap: 8,
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        let payload = tiny_payload();
        let up = client
            .upload(&crate::wire::UploadRequest {
                circuit: "tiny".into(),
                fmt: "hgr".into(),
                payload: Some(payload.clone().into_bytes()),
                path: None,
            })
            .unwrap();
        assert_eq!(up.get("ok").and_then(Json::as_bool), Some(true), "{up:?}");
        assert_eq!(up.get("nodes").and_then(Json::as_u64), Some(24));

        let listed = client.circuits().unwrap();
        let arr = listed.get("circuits").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("id").and_then(Json::as_str), Some("tiny"));
        assert_eq!(arr[0].get("cached").and_then(Json::as_bool), Some(true));

        let inline = client
            .submit(&SubmitRequest {
                engine: "fm".into(),
                runs: 2,
                seed: 9,
                payload,
                wait: true,
                ..SubmitRequest::default()
            })
            .unwrap();
        let stored = client
            .submit(&SubmitRequest {
                engine: "fm".into(),
                runs: 2,
                seed: 9,
                circuit_id: "tiny".into(),
                wait: true,
                ..SubmitRequest::default()
            })
            .unwrap();
        for key in ["cut", "assignment_hash", "run_cuts"] {
            assert_eq!(inline.get(key), stored.get(key), "{key} differs");
        }
        assert_eq!(stored.get("status").and_then(Json::as_str), Some("completed"));

        // Unknown ids are refused at admission, not at run time.
        let resp = client
            .submit(&SubmitRequest {
                engine: "fm".into(),
                circuit_id: "ghost".into(),
                wait: true,
                ..SubmitRequest::default()
            })
            .unwrap();
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("unknown_circuit"));

        let resp = client.evict("tiny").unwrap();
        assert_eq!(resp.get("evicted").and_then(Json::as_bool), Some(true));
        let listed = client.circuits().unwrap();
        assert_eq!(
            listed.get("circuits").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );

        client.shutdown().unwrap();
        handle.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_and_watch_require_a_coordinator() {
        let handle = start_test_server(1, 4);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client.roundtrip("batch circuit_id=c").unwrap();
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("not_coordinator"));
        let terminal = client.watch(1, |_| {}).unwrap();
        assert_eq!(
            terminal.get("error").and_then(Json::as_str),
            Some("not_coordinator")
        );
        // The connection survives the error lines.
        assert!(client.ping().is_ok());
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn coordinator_mode_validates_its_config() {
        let no_store = start(&ServerConfig {
            cluster: Some(crate::cluster::ClusterConfig {
                workers: vec!["127.0.0.1:1".into()],
                ..crate::cluster::ClusterConfig::default()
            }),
            ..ServerConfig::default()
        });
        assert_eq!(
            no_store.err().map(|e| e.kind()),
            Some(std::io::ErrorKind::InvalidInput)
        );
        let no_workers = start(&ServerConfig {
            store_dir: Some("unused".into()),
            cluster: Some(crate::cluster::ClusterConfig::default()),
            ..ServerConfig::default()
        });
        assert_eq!(
            no_workers.err().map(|e| e.kind()),
            Some(std::io::ErrorKind::InvalidInput)
        );
    }

    #[test]
    fn coordinator_runs_a_batch_end_to_end() {
        let base = std::env::temp_dir().join(format!(
            "prop-serve-cluster-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::remove_dir_all(&base).ok();
        let worker = start(&ServerConfig {
            workers: 1,
            queue_cap: 16,
            store_dir: Some(base.join("w").to_string_lossy().into_owned()),
            ..ServerConfig::default()
        })
        .unwrap();
        let coordinator = start(&ServerConfig {
            workers: 1,
            queue_cap: 16,
            store_dir: Some(base.join("c").to_string_lossy().into_owned()),
            cluster: Some(crate::cluster::ClusterConfig {
                workers: vec![worker.addr().to_string()],
                heartbeat_ms: 50,
                ..crate::cluster::ClusterConfig::default()
            }),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(coordinator.addr()).unwrap();
        client
            .upload(&crate::wire::UploadRequest {
                circuit: "tiny".into(),
                fmt: "hgr".into(),
                payload: Some(tiny_payload().into_bytes()),
                path: None,
            })
            .unwrap();

        let spec = crate::batch::BatchRequest {
            circuit_id: "tiny".into(),
            engines: vec!["fm".into()],
            runs: 4,
            seed: 3,
            chunk: 2,
            ..crate::batch::BatchRequest::default()
        };
        let resp = client.batch(&spec).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
        assert_eq!(resp.get("sub_jobs").and_then(Json::as_u64), Some(2));
        let job = resp.get("job").and_then(Json::as_u64).unwrap();

        // The circuit is pinned while the batch is live: evict is busy
        // until the done event lands (it may already have landed on a
        // fast machine, so only assert the typed code when refused).
        let evict = client.evict("tiny").unwrap();
        if evict.get("ok").and_then(Json::as_bool) != Some(true) {
            assert_eq!(evict.get("error").and_then(Json::as_str), Some("circuit_busy"));
        }

        let mut events = Vec::new();
        let done = client.watch(job, |e| events.push(e.clone())).unwrap();
        assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("status").and_then(Json::as_str), Some("completed"));
        assert!(done.get("cut").and_then(Json::as_f64).is_some());
        assert_eq!(
            done.get("run_cuts").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        assert!(
            events
                .iter()
                .any(|e| e.get("event").and_then(Json::as_str) == Some("result")),
            "per-sub-job result events streamed"
        );

        // status/wait on a finished batch return the terminal view; a
        // second watch replays the full log.
        let status = client.status(job).unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("completed"));
        assert_eq!(client.wait(job).unwrap(), status);
        let replay = client.watch(job, |_| {}).unwrap();
        assert_eq!(replay, done);

        // Batch done → pin released → evict succeeds.
        let evict = client.evict("tiny").unwrap();
        assert_eq!(evict.get("ok").and_then(Json::as_bool), Some(true), "{evict:?}");

        let stats = client.stats().unwrap();
        let cluster = stats.get("stats").and_then(|s| s.get("cluster")).unwrap();
        let workers = cluster.get("workers").and_then(Json::as_arr).unwrap();
        assert_eq!(workers.len(), 1);
        assert!(workers[0].get("completed").and_then(Json::as_u64).unwrap() >= 2);
        assert_eq!(workers[0].get("uploads").and_then(Json::as_u64), Some(1));
        assert_eq!(
            cluster
                .get("batches")
                .and_then(|b| b.get("completed"))
                .and_then(Json::as_u64),
            Some(1)
        );

        client.shutdown().unwrap();
        coordinator.join();
        let mut wclient = Client::connect(worker.addr()).unwrap();
        wclient.shutdown().unwrap();
        worker.join();
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn bad_payload_fails_the_job_not_the_daemon() {
        let handle = start_test_server(1, 4);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client
            .submit(&SubmitRequest {
                payload: "this is not an hgr file".into(),
                wait: true,
                ..SubmitRequest::default()
            })
            .unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("failed"));
        assert!(resp.get("message").and_then(Json::as_str).is_some());
        // Daemon still healthy.
        assert!(client.ping().is_ok());
        client.shutdown().unwrap();
        handle.join();
    }
}
