//! Robustness of the daemon's wire surface against malformed, hostile,
//! and half-finished input.
//!
//! Contract under test: a bad request may cost the offending client its
//! connection, but it must never panic a thread, wedge a worker, or
//! degrade service for well-behaved clients. Every scenario ends by
//! proving the daemon still completes a real job.

use prop_serve::{server, Client, Json, ServerConfig, SubmitRequest};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_small_server() -> server::ServerHandle {
    server::start(&ServerConfig {
        workers: 1,
        queue_cap: 8,
        // Small cap so the oversized-line scenario is cheap to trigger.
        max_request_bytes: 4096,
        ..ServerConfig::default()
    })
    .unwrap()
}

fn raw_connection(handle: &server::ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn read_response_line(stream: &TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// The daemon still runs real jobs to completion.
fn assert_daemon_healthy(handle: &server::ServerHandle) {
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .submit(&SubmitRequest {
            engine: "fm".into(),
            runs: 1,
            payload: "3 4\n1 2\n2 3\n3 4\n".into(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("completed"),
        "{}",
        response.render()
    );
}

#[test]
fn malformed_lines_get_errors_and_keep_the_connection() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    for bad in [
        "frobnicate\n",
        "submit\n",
        "submit payload=abc runs=0\n",
        "submit payload=%GG\n",
        "status job=banana\n",
        "ping trailing=field\n",
        "\n",
    ] {
        stream.write_all(bad.as_bytes()).unwrap();
        let response = read_response_line(&stream);
        let body = prop_serve::json::parse(&response).expect("error responses are valid JSON");
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false), "{bad:?}");
        assert!(body.get("message").and_then(Json::as_str).is_some(), "{bad:?}");
    }
    // Same connection still serves well-formed requests.
    stream.write_all(b"ping\n").unwrap();
    let pong = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn non_utf8_bytes_are_rejected_cleanly() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    stream.write_all(b"submit payload=a \xff\xfe garbage\n").unwrap();
    let body = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
    // Framing intact: the next request on the same connection works.
    stream.write_all(b"stats\n").unwrap();
    let stats = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let malformed = stats
        .get("stats")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("malformed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(malformed >= 1, "malformed counter should have moved");

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_request_is_refused_and_connection_dropped() {
    let handle = start_small_server();
    let stream = raw_connection(&handle);
    // 64 KiB against a 4 KiB cap. The server answers once mid-stream and
    // drops the connection; because it closes with unread bytes pending,
    // the remaining writes (and even the response read) may instead see a
    // reset — both are a clean refusal, never a hang or a panic.
    let huge = vec![b'a'; 64 * 1024];
    let _ = (&stream).write_all(&huge);
    let _ = (&stream).write_all(b"\n");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => {
            let body = prop_serve::json::parse(line.trim_end()).unwrap();
            assert_eq!(body.get("error").and_then(Json::as_str), Some("too_large"));
            // After the one refusal the connection is closed.
            let mut rest = Vec::new();
            let n = reader.read_to_end(&mut rest).unwrap_or(0);
            assert_eq!(n, 0, "expected EOF after the oversized-line rejection");
        }
        // EOF or reset before the response: the drop itself is the refusal.
        Ok(_) | Err(_) => {}
    }

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn premature_disconnects_do_not_wedge_the_daemon() {
    let handle = start_small_server();
    // Half a request, then drop; a bare connect-and-drop; a drop right
    // after a full submit whose response we never read.
    {
        let mut stream = raw_connection(&handle);
        stream.write_all(b"submit engine=prop payl").unwrap();
    }
    {
        let _stream = raw_connection(&handle);
    }
    {
        let mut stream = raw_connection(&handle);
        let req = SubmitRequest {
            engine: "fm".into(),
            runs: 1,
            payload: "3 4\n1 2\n2 3\n3 4\n".into(),
            wait: true,
            ..SubmitRequest::default()
        };
        stream
            .write_all(format!("{}\n", req.render()).as_bytes())
            .unwrap();
        // Drop without reading the response: the worker still finishes
        // the job and the write failure is contained.
    }
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn binary_flood_never_panics_a_worker() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    // Newline-riddled binary noise: every "line" is a malformed request.
    let mut noise = Vec::new();
    for i in 0..200u32 {
        noise.extend_from_slice(&i.to_le_bytes());
        noise.push(if i % 3 == 0 { b'\n' } else { 0x07 });
    }
    noise.push(b'\n');
    stream.write_all(&noise).unwrap();
    // Drain whatever error responses came back (count is not the point;
    // surviving is).
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    // One response is enough (count is not the point; surviving is).
    if reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
        let body = prop_serve::json::parse(line.trim_end()).unwrap();
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
    }
    drop(stream);

    assert_daemon_healthy(&handle);
    // No worker panicked anywhere in this test.
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    let panics = stats
        .get("stats")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("worker_panics"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(panics, 0);
    client.shutdown().unwrap();
    handle.join();
}
