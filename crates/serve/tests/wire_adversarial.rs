//! Robustness of the daemon's wire surface against malformed, hostile,
//! and half-finished input.
//!
//! Contract under test: a bad request may cost the offending client its
//! connection, but it must never panic a thread, wedge a worker, or
//! degrade service for well-behaved clients. Every scenario ends by
//! proving the daemon still completes a real job.

use prop_serve::{server, BatchRequest, Client, ClusterConfig, Json, ServerConfig, SubmitRequest};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn start_small_server() -> server::ServerHandle {
    server::start(&ServerConfig {
        workers: 1,
        queue_cap: 8,
        // Small cap so the oversized-line scenario is cheap to trigger.
        max_request_bytes: 4096,
        ..ServerConfig::default()
    })
    .unwrap()
}

fn raw_connection(handle: &server::ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn read_response_line(stream: &TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// The daemon still runs real jobs to completion.
fn assert_daemon_healthy(handle: &server::ServerHandle) {
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .submit(&SubmitRequest {
            engine: "fm".into(),
            runs: 1,
            payload: "3 4\n1 2\n2 3\n3 4\n".into(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("completed"),
        "{}",
        response.render()
    );
}

#[test]
fn malformed_lines_get_errors_and_keep_the_connection() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    for bad in [
        "frobnicate\n",
        "submit\n",
        "submit payload=abc runs=0\n",
        "submit payload=%GG\n",
        "status job=banana\n",
        "ping trailing=field\n",
        "\n",
    ] {
        stream.write_all(bad.as_bytes()).unwrap();
        let response = read_response_line(&stream);
        let body = prop_serve::json::parse(&response).expect("error responses are valid JSON");
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false), "{bad:?}");
        assert!(body.get("message").and_then(Json::as_str).is_some(), "{bad:?}");
    }
    // Same connection still serves well-formed requests.
    stream.write_all(b"ping\n").unwrap();
    let pong = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn non_utf8_bytes_are_rejected_cleanly() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    stream.write_all(b"submit payload=a \xff\xfe garbage\n").unwrap();
    let body = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
    // Framing intact: the next request on the same connection works.
    stream.write_all(b"stats\n").unwrap();
    let stats = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let malformed = stats
        .get("stats")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("malformed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(malformed >= 1, "malformed counter should have moved");

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_request_is_refused_and_connection_dropped() {
    let handle = start_small_server();
    let stream = raw_connection(&handle);
    // 64 KiB against a 4 KiB cap. The server answers once mid-stream and
    // drops the connection; because it closes with unread bytes pending,
    // the remaining writes (and even the response read) may instead see a
    // reset — both are a clean refusal, never a hang or a panic.
    let huge = vec![b'a'; 64 * 1024];
    let _ = (&stream).write_all(&huge);
    let _ = (&stream).write_all(b"\n");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => {
            let body = prop_serve::json::parse(line.trim_end()).unwrap();
            assert_eq!(body.get("error").and_then(Json::as_str), Some("too_large"));
            // After the one refusal the connection is closed.
            let mut rest = Vec::new();
            let n = reader.read_to_end(&mut rest).unwrap_or(0);
            assert_eq!(n, 0, "expected EOF after the oversized-line rejection");
        }
        // EOF or reset before the response: the drop itself is the refusal.
        Ok(_) | Err(_) => {}
    }

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn premature_disconnects_do_not_wedge_the_daemon() {
    let handle = start_small_server();
    // Half a request, then drop; a bare connect-and-drop; a drop right
    // after a full submit whose response we never read.
    {
        let mut stream = raw_connection(&handle);
        stream.write_all(b"submit engine=prop payl").unwrap();
    }
    {
        let _stream = raw_connection(&handle);
    }
    {
        let mut stream = raw_connection(&handle);
        let req = SubmitRequest {
            engine: "fm".into(),
            runs: 1,
            payload: "3 4\n1 2\n2 3\n3 4\n".into(),
            wait: true,
            ..SubmitRequest::default()
        };
        stream
            .write_all(format!("{}\n", req.render()).as_bytes())
            .unwrap();
        // Drop without reading the response: the worker still finishes
        // the job and the write failure is contained.
    }
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

fn tiny_hgr() -> String {
    let g = prop_netlist::generate::generate(
        &prop_netlist::generate::GeneratorConfig::new(24, 28, 96).with_seed(17),
    )
    .unwrap();
    prop_netlist::format::write_hgr(&g)
}

/// A worker daemon plus a coordinator fronting it (and any extra,
/// possibly hostile, worker addresses), with a circuit uploaded as `c`.
fn start_cluster(
    tag: &str,
    extra_workers: Vec<String>,
    max_retries: u32,
) -> (server::ServerHandle, server::ServerHandle, std::path::PathBuf) {
    let base = std::env::temp_dir().join(format!(
        "prop-wire-adversarial-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&base).ok();
    let worker = server::start(&ServerConfig {
        workers: 1,
        queue_cap: 16,
        store_dir: Some(base.join("w").to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut workers = vec![worker.addr().to_string()];
    workers.extend(extra_workers);
    let coordinator = server::start(&ServerConfig {
        workers: 1,
        queue_cap: 16,
        store_dir: Some(base.join("c").to_string_lossy().into_owned()),
        cluster: Some(ClusterConfig {
            workers,
            heartbeat_ms: 25,
            heartbeat_timeout_ms: 100,
            max_retries,
            backoff_ms: 20,
        }),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(coordinator.addr()).unwrap();
    client
        .upload(&prop_serve::UploadRequest {
            circuit: "c".into(),
            fmt: "hgr".into(),
            payload: Some(tiny_hgr().into_bytes()),
            path: None,
        })
        .unwrap();
    (coordinator, worker, base)
}

fn stop_cluster(
    coordinator: server::ServerHandle,
    worker: server::ServerHandle,
    base: &std::path::Path,
) {
    Client::connect(coordinator.addr()).unwrap().shutdown().unwrap();
    coordinator.join();
    Client::connect(worker.addr()).unwrap().shutdown().unwrap();
    worker.join();
    std::fs::remove_dir_all(base).ok();
}

#[test]
fn malformed_batch_specs_get_typed_errors() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    for bad in [
        "batch\n",                                   // no circuit_id
        "batch circuit_id=c engines=quantum\n",      // unknown engine
        "batch circuit_id=c engines=\n",             // empty dimension
        "batch circuit_id=c eps=0.6:0.4\n",          // inverted ratios
        "batch circuit_id=c eps=0.45\n",             // not a pair
        "batch circuit_id=c eps=a:b\n",              // non-numeric
        "batch circuit_id=c runs=0\n",               // empty sweep
        "batch circuit_id=c chunk=0\n",              // zero grain
        "batch circuit_id=c runs=999999 chunk=1\n",  // over the sub-job cap
        "batch circuit_id=c bogus=1\n",              // unknown field
        "watch\n",                                   // no job
        "watch job=banana\n",                        // non-numeric job
    ] {
        stream.write_all(bad.as_bytes()).unwrap();
        let body = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false), "{bad:?}");
        assert_eq!(
            body.get("error").and_then(Json::as_str),
            Some("malformed"),
            "{bad:?}"
        );
    }
    // A well-formed batch against a plain daemon gets the typed
    // not_coordinator error, not a hang or a panic.
    stream.write_all(b"batch circuit_id=c\n").unwrap();
    let body = prop_serve::json::parse(&read_response_line(&stream)).unwrap();
    assert_eq!(body.get("error").and_then(Json::as_str), Some("not_coordinator"));

    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.join();
}

#[test]
fn watch_errors_are_single_typed_lines() {
    let (coordinator, worker, base) = start_cluster("watch-errors", Vec::new(), 3);
    let mut client = Client::connect(coordinator.addr()).unwrap();
    // Unknown batch id.
    let terminal = client.watch(424_242, |_| {}).unwrap();
    assert_eq!(terminal.get("error").and_then(Json::as_str), Some("unknown_job"));
    // A plain (non-batch) job id is not watchable either.
    let resp = client
        .submit(&SubmitRequest {
            engine: "fm".into(),
            runs: 1,
            payload: "3 4\n1 2\n2 3\n3 4\n".into(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    let terminal = client.watch(job, |_| {}).unwrap();
    assert_eq!(terminal.get("error").and_then(Json::as_str), Some("unknown_job"));
    // The connection survives both error lines.
    assert!(client.ping().is_ok());
    stop_cluster(coordinator, worker, &base);
}

#[test]
fn client_truncated_watch_stream_surfaces_as_protocol_error() {
    // A fake coordinator that sends one half-finished event line and
    // closes mid-stream: the client reports a typed protocol error
    // instead of hanging or panicking.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap()).read_line(&mut line).unwrap();
        assert!(line.starts_with("watch"));
        s.write_all(b"{\"ok\":true,\"event\":\"progress\"}\n").unwrap();
        s.write_all(b"{\"ok\":true,\"eve").unwrap(); // truncated, then gone
    });
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut events = 0;
    let err = client.watch(7, |_| events += 1).unwrap_err();
    assert_eq!(err.code(), "protocol");
    assert_eq!(events, 1, "the complete event line was still delivered");
    fake.join().unwrap();
}

#[test]
fn watcher_disconnect_mid_stream_does_not_stop_the_batch() {
    let (coordinator, worker, base) = start_cluster("watcher-drop", Vec::new(), 3);
    let mut client = Client::connect(coordinator.addr()).unwrap();
    let resp = client
        .batch(&BatchRequest {
            circuit_id: "c".into(),
            engines: vec!["fm".into()],
            runs: 6,
            chunk: 1,
            ..BatchRequest::default()
        })
        .unwrap();
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    {
        // Start a watch, read at most one line, and vanish.
        let mut stream = raw_connection(&coordinator);
        stream.write_all(format!("watch job={job}\n").as_bytes()).unwrap();
        let _ = read_response_line(&stream);
    }
    // The batch still runs to completion and the daemon stays healthy.
    let done = client.wait(job).unwrap();
    assert_eq!(done.get("status").and_then(Json::as_str), Some("completed"), "{}", done.render());
    assert_daemon_healthy(&coordinator);
    stop_cluster(coordinator, worker, &base);
}

#[test]
fn bogus_heartbeat_replies_mark_the_worker_lost_not_the_daemon() {
    // A hostile "worker" that answers every request — pings and submits
    // alike — with garbage, then closes. The coordinator must treat it
    // as a failed ping / failed sub-job, reschedule onto the real
    // worker, and finish the batch.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let bogus_addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { continue };
            let mut line = String::new();
            let _ = BufReader::new(s.try_clone().unwrap()).read_line(&mut line);
            let _ = s.write_all(b"}}} utterly not json {{{\n");
        }
    });
    // Generous retry budget: the bogus worker may grab (and fail) a few
    // sub-jobs before the heartbeat declares it lost.
    let (coordinator, worker, base) = start_cluster("bogus-worker", vec![bogus_addr], 50);
    let mut client = Client::connect(coordinator.addr()).unwrap();
    let resp = client
        .batch(&BatchRequest {
            circuit_id: "c".into(),
            engines: vec!["fm".into()],
            runs: 8,
            chunk: 1,
            ..BatchRequest::default()
        })
        .unwrap();
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    let done = client.wait(job).unwrap();
    assert_eq!(done.get("status").and_then(Json::as_str), Some("completed"), "{}", done.render());

    // The batch can finish before the heartbeat grace period expires,
    // so poll until the bogus worker is declared lost (bounded wait).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let workers = loop {
        let stats = client.stats().unwrap();
        let cluster = stats.get("stats").and_then(|s| s.get("cluster")).unwrap();
        let workers = cluster.get("workers").and_then(Json::as_arr).unwrap().to_vec();
        assert_eq!(workers.len(), 2);
        if workers[1].get("alive").and_then(Json::as_bool) == Some(false) {
            break workers;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "bogus worker never marked lost: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    // The bogus worker accumulated ping failures, never completed a
    // sub-job, and every sub-job ultimately ran on the real worker.
    let bogus = &workers[1];
    assert!(bogus.get("ping_failures").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(bogus.get("completed").and_then(Json::as_u64), Some(0));
    assert_eq!(workers[0].get("completed").and_then(Json::as_u64), Some(8));
    assert_daemon_healthy(&coordinator);
    stop_cluster(coordinator, worker, &base);
}

#[test]
fn binary_flood_never_panics_a_worker() {
    let handle = start_small_server();
    let mut stream = raw_connection(&handle);
    // Newline-riddled binary noise: every "line" is a malformed request.
    let mut noise = Vec::new();
    for i in 0..200u32 {
        noise.extend_from_slice(&i.to_le_bytes());
        noise.push(if i % 3 == 0 { b'\n' } else { 0x07 });
    }
    noise.push(b'\n');
    stream.write_all(&noise).unwrap();
    // Drain whatever error responses came back (count is not the point;
    // surviving is).
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    // One response is enough (count is not the point; surviving is).
    if reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
        let body = prop_serve::json::parse(line.trim_end()).unwrap();
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
    }
    drop(stream);

    assert_daemon_healthy(&handle);
    // No worker panicked anywhere in this test.
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    let panics = stats
        .get("stats")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("worker_panics"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(panics, 0);
    client.shutdown().unwrap();
    handle.join();
}
