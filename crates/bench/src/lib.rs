//! Criterion benchmark crate for the PROP reproduction.
//!
//! One bench target per evaluation artefact of the paper:
//!
//! * `table2_iterative` — per-run time of the Table-2 iterative methods.
//! * `table3_clustering` — per-invocation time of the Table-3 methods.
//! * `table4_runtime` — the per-circuit method timings of Table 4.
//! * `scaling` — PROP pass time against circuit size (the §3.5
//!   Θ(m log n) claim).
//! * `ablation` — runtime effect of PROP's parameters.
//! * `intra_parallel` — the `ml` V-cycle at the classic sequential
//!   engine vs the deterministic intra-parallel engine at 1/2/4 workers.
//!
//! Benchmarks use the smaller proxy circuits and reduced run counts so a
//! full `cargo bench --workspace` finishes in minutes; the experiment
//! binaries in `prop-experiments` regenerate the *quality* numbers.

#![forbid(unsafe_code)]

use prop_netlist::suite;
use prop_netlist::Hypergraph;

/// Instantiates a named proxy circuit for benchmarking.
///
/// # Panics
///
/// Panics on an unknown circuit name.
pub fn circuit(name: &str) -> Hypergraph {
    suite::by_name(name)
        .unwrap_or_else(|| panic!("unknown circuit {name}"))
        .instantiate()
        .expect("Table-1 specs are valid")
}
