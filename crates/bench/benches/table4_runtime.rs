//! Table-4: one benchmark per (method, circuit) pair — the per-run CPU
//! time table. Two representative circuits keep `cargo bench` quick; the
//! `table4` experiment binary covers the full suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prop_bench::circuit;
use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_fm::{FmBucket, La};
use prop_spectral::{Eig1, GlobalPartitioner};

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for name in ["bm1", "t3"] {
        let graph = circuit(name);
        let b5050 = BalanceConstraint::bisection(graph.num_nodes());
        let b4555 =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");

        let fm = FmBucket::default();
        group.bench_with_input(BenchmarkId::new("FM-bucket", name), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fm.run_seeded(g, b5050, seed).expect("valid").cut_cost
            });
        });
        let la2 = La::new(2);
        group.bench_with_input(BenchmarkId::new("LA-2", name), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                la2.run_seeded(g, b5050, seed).expect("valid").cut_cost
            });
        });
        let prop = Prop::new(PropConfig::calibrated());
        group.bench_with_input(BenchmarkId::new("PROP", name), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                prop.run_seeded(g, b4555, seed).expect("valid").cut_cost
            });
        });
        let eig1 = Eig1::default();
        group.bench_with_input(BenchmarkId::new("EIG1", name), &graph, |b, g| {
            b.iter(|| eig1.partition(g, b4555).expect("valid").cut_cost);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
