//! Intra-run parallel V-cycle: one full `ml` run per iteration, at the
//! classic sequential engine and at the deterministic intra-parallel
//! engine with 1, 2, and 4 workers.
//!
//! The `intra/1` vs `intra/2`/`intra/4` spread is the latency payoff of
//! the synchronous-round algorithms (on a multi-core host); `seq` vs
//! `intra/1` is the single-thread overhead of the round-based formulation
//! (the quantity the `scripts/check.sh` regression budget bounds at 5%).
//! The partitions at `intra/1`, `intra/2`, and `intra/4` are
//! bit-identical by construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prop_bench::circuit;
use prop_core::{BalanceConstraint, ParallelPolicy, Partitioner};
use prop_multilevel::{Multilevel, MultilevelConfig};

fn bench_intra(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_parallel");
    group.sample_size(10);
    for name in ["bm1", "golem3"] {
        let graph = circuit(name);
        let balance =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");

        let seq = Multilevel::standard(MultilevelConfig::default());
        group.bench_with_input(BenchmarkId::new("seq", name), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                seq.run_seeded(g, balance, seed).expect("valid").cut_cost
            });
        });
        for threads in [1usize, 2, 4] {
            let engine = Multilevel::standard(MultilevelConfig {
                intra: ParallelPolicy::Threads(threads),
                ..MultilevelConfig::default()
            });
            group.bench_with_input(
                BenchmarkId::new(format!("intra/{threads}"), name),
                &graph,
                |b, g| {
                    let mut seed = 0;
                    b.iter(|| {
                        seed += 1;
                        engine.run_seeded(g, balance, seed).expect("valid").cut_cost
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_intra);
criterion_main!(benches);
