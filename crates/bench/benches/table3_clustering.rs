//! Table-3 methods: per-invocation cost of the clustering/spectral
//! partitioners under the 45-55% balance criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prop_bench::circuit;
use prop_core::BalanceConstraint;
use prop_spectral::{Eig1, GlobalPartitioner, MeloStyle, ParaboliStyle, WindowStyle};

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for name in ["balu", "struct"] {
        let graph = circuit(name);
        let balance =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let methods: Vec<(&str, Box<dyn GlobalPartitioner>)> = vec![
            ("EIG1", Box::new(Eig1::default())),
            ("MELO", Box::new(MeloStyle::default())),
            ("PARABOLI", Box::new(ParaboliStyle::default())),
            ("WINDOW-5", Box::new(WindowStyle { runs: 5, seed: 0 })),
        ];
        for (method, partitioner) in methods {
            group.bench_with_input(BenchmarkId::new(method, name), &graph, |b, graph| {
                b.iter(|| {
                    partitioner
                        .partition(graph, balance)
                        .expect("non-empty graph")
                        .cut_cost
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
