//! Table-2 methods: per-run cost of the iterative improvers under the
//! 50-50% balance criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prop_bench::circuit;
use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_fm::{FmBucket, FmTree, La};

fn bench_iterative(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for name in ["balu", "struct"] {
        let graph = circuit(name);
        let balance = BalanceConstraint::bisection(graph.num_nodes());
        let methods: Vec<(&str, Box<dyn Partitioner>)> = vec![
            ("FM-bucket", Box::new(FmBucket::default())),
            ("FM-tree", Box::new(FmTree::default())),
            ("LA-2", Box::new(La::new(2))),
            ("LA-3", Box::new(La::new(3))),
            ("PROP", Box::new(Prop::new(PropConfig::calibrated()))),
        ];
        for (method, partitioner) in methods {
            group.bench_with_input(
                BenchmarkId::new(method, name),
                &graph,
                |b, graph| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        partitioner
                            .run_seeded(graph, balance, seed)
                            .expect("non-empty graph")
                            .cut_cost
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_iterative);
criterion_main!(benches);
