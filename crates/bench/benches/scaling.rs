//! §3.5 complexity claims: PROP's per-run time against circuit size.
//!
//! The paper derives Θ(m log n) per pass with Θ(m) space. This bench
//! sweeps geometrically growing synthetic circuits with constant average
//! degree, so per-run time should grow slightly super-linearly in m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_fm::FmBucket;
use prop_netlist::generate::{generate, GeneratorConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for nodes in [500usize, 1000, 2000, 4000, 8000] {
        let nets = nodes * 11 / 10;
        let pins = nets * 7 / 2; // q ≈ 3.5, matching the suite
        let graph = generate(&GeneratorConfig::new(nodes, nets, pins).with_seed(77))
            .expect("valid scaling config");
        let balance = BalanceConstraint::bisection(nodes);
        group.throughput(Throughput::Elements(pins as u64));

        let prop = Prop::new(PropConfig::calibrated());
        group.bench_with_input(BenchmarkId::new("PROP", nodes), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                prop.run_seeded(g, balance, seed).expect("valid").cut_cost
            });
        });
        let fm = FmBucket::default();
        group.bench_with_input(BenchmarkId::new("FM-bucket", nodes), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fm.run_seeded(g, balance, seed).expect("valid").cut_cost
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
