//! Runtime cost of PROP's design knobs: refinement iterations, top-k
//! refresh width, probability floor, and seeding method. The *quality*
//! side of the same sweep is produced by the `ablation` experiment
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prop_bench::circuit;
use prop_core::{BalanceConstraint, GainInit, Partitioner, Prop, PropConfig};

fn bench_ablation(c: &mut Criterion) {
    let graph = circuit("struct");
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let variants: Vec<(String, PropConfig)> = vec![
        ("paper".into(), PropConfig::default()),
        ("calibrated".into(), PropConfig::calibrated()),
        (
            "refine0".into(),
            PropConfig {
                refine_iterations: 0,
                ..PropConfig::calibrated()
            },
        ),
        (
            "refine4".into(),
            PropConfig {
                refine_iterations: 4,
                ..PropConfig::calibrated()
            },
        ),
        (
            "topk0".into(),
            PropConfig {
                top_k_refresh: 0,
                ..PropConfig::calibrated()
            },
        ),
        (
            "topk20".into(),
            PropConfig {
                top_k_refresh: 20,
                ..PropConfig::calibrated()
            },
        ),
        (
            "det-init".into(),
            PropConfig {
                init: GainInit::Deterministic,
                ..PropConfig::calibrated()
            },
        ),
    ];
    for (name, config) in variants {
        let prop = Prop::new(config);
        group.bench_with_input(BenchmarkId::new("PROP", &name), &graph, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                prop.run_seeded(g, balance, seed).expect("valid").cut_cost
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
