//! Property tests for the linear-algebra substrate against dense models.

use proptest::prelude::*;
use prop_linalg::{conjugate_gradient, tridiagonal_eigen, CsrMatrix};

fn arb_triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec(
        (0..n, 0..n, -4i32..=4).prop_map(|(r, c, v)| (r, c, f64::from(v) * 0.5)),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CSR matvec equals the dense-model matvec for arbitrary triplet
    /// soups (duplicates summed).
    #[test]
    fn csr_matvec_matches_dense(
        triplets in arb_triplets(8),
        x in proptest::collection::vec(-3i32..=3, 8),
    ) {
        let x: Vec<f64> = x.into_iter().map(f64::from).collect();
        let m = CsrMatrix::from_triplets(8, 8, &triplets);
        let mut dense = [[0.0f64; 8]; 8];
        for &(r, c, v) in &triplets {
            dense[r][c] += v;
        }
        let got = m.matvec(&x);
        for r in 0..8 {
            let want: f64 = (0..8).map(|c| dense[r][c] * x[c]).sum();
            prop_assert!((got[r] - want).abs() < 1e-12, "row {r}: {} vs {want}", got[r]);
        }
        // get() agrees with the dense model too.
        for r in 0..8 {
            for c in 0..8 {
                prop_assert_eq!(m.get(r, c), dense[r][c]);
            }
        }
    }

    /// The tridiagonal QL solver returns an orthonormal eigenbasis with
    /// small residuals for arbitrary symmetric tridiagonal matrices.
    #[test]
    fn tridiagonal_eigen_residuals(
        diag in proptest::collection::vec(-4i32..=4, 2..12),
        off_raw in proptest::collection::vec(-4i32..=4, 11),
    ) {
        let n = diag.len();
        let diag: Vec<f64> = diag.into_iter().map(f64::from).collect();
        let off: Vec<f64> = off_raw[..n - 1].iter().map(|&v| f64::from(v)).collect();
        let (vals, vecs) = tridiagonal_eigen(&diag, &off);
        // Eigenvalues ascending.
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-10));
        // Residuals and orthonormality.
        for i in 0..n {
            let x = &vecs[i];
            for r in 0..n {
                let mut tx = diag[r] * x[r];
                if r > 0 { tx += off[r - 1] * x[r - 1]; }
                if r + 1 < n { tx += off[r] * x[r + 1]; }
                prop_assert!((tx - vals[i] * x[r]).abs() < 1e-7);
            }
            for j in (i + 1)..n {
                let d: f64 = x.iter().zip(&vecs[j]).map(|(a, b)| a * b).sum();
                prop_assert!(d.abs() < 1e-7, "vectors {i},{j} not orthogonal: {d}");
            }
        }
        // Trace is preserved by the spectrum.
        let trace: f64 = diag.iter().sum();
        let spectral_sum: f64 = vals.iter().sum();
        prop_assert!((trace - spectral_sum).abs() < 1e-7);
    }

    /// CG solves arbitrary diagonally dominant SPD systems to tolerance.
    #[test]
    fn cg_solves_spd_systems(
        off in proptest::collection::vec(-2i32..=2, 9),
        rhs in proptest::collection::vec(-3i32..=3, 10),
    ) {
        let n = 10;
        let mut triplets = Vec::new();
        let mut row_abs = vec![0.0f64; n];
        for i in 0..n - 1 {
            let v = f64::from(off[i]);
            if v != 0.0 {
                triplets.push((i, i + 1, v));
                triplets.push((i + 1, i, v));
                row_abs[i] += v.abs();
                row_abs[i + 1] += v.abs();
            }
        }
        for (i, &abs) in row_abs.iter().enumerate() {
            triplets.push((i, i, abs + 1.0)); // strictly dominant diagonal
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        let b: Vec<f64> = rhs.into_iter().map(f64::from).collect();
        let out = conjugate_gradient(&a, &b, 200, 1e-10);
        prop_assert!(out.converged, "residual {}", out.residual_norm);
        let ax = a.matvec(&out.x);
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }
}
