//! Dense vector kernels.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalises `x` to unit length; returns the original norm. A zero vector
/// is left unchanged and 0 is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Removes from `x` its components along each (unit-norm) vector in
/// `basis` — one modified Gram–Schmidt sweep.
pub fn orthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for q in basis {
        let c = dot(x, q);
        axpy(-c, q, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, -0.5]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = vec![0.0, 3.0, 4.0];
        assert_eq!(normalize(&mut x), 5.0);
        assert!((norm(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let e1 = vec![1.0, 0.0, 0.0];
        let e2 = vec![0.0, 1.0, 0.0];
        let mut x = vec![2.0, 3.0, 4.0];
        orthogonalize(&mut x, &[e1, e2]);
        assert!((x[0]).abs() < 1e-15);
        assert!((x[1]).abs() < 1e-15);
        assert_eq!(x[2], 4.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_dot_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
