//! Sparse linear algebra for the spectral partitioning baselines.
//!
//! Everything is implemented from scratch on `f64`:
//!
//! * [`CsrMatrix`] — compressed sparse row matrices with duplicate-summing
//!   triplet construction and matrix–vector products.
//! * [`vector`] — dense vector kernels (dot, axpy, norms, orthogonalise).
//! * [`tridiagonal_eigen`] — the implicit-shift QL eigensolver for
//!   symmetric tridiagonal matrices (the EISPACK `tql2` algorithm).
//! * [`lanczos_smallest`] — Lanczos with full reorthogonalisation for the
//!   smallest eigenpairs of a symmetric matrix (graph Laplacians here).
//! * [`conjugate_gradient`] — CG for symmetric positive-definite systems,
//!   used by the PARABOLI-style quadratic placement baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod csr;
mod lanczos;
mod tridiag;
pub mod vector;

pub use cg::{conjugate_gradient, CgOutcome};
pub use csr::CsrMatrix;
pub use lanczos::{lanczos_smallest, LanczosOptions};
pub use tridiag::tridiagonal_eigen;
