//! Implicit-shift QL eigensolver for symmetric tridiagonal matrices
//! (the classic EISPACK `tql2` algorithm).

/// Computes all eigenvalues and eigenvectors of the symmetric tridiagonal
/// matrix with diagonal `diag` and subdiagonal `offdiag`
/// (`offdiag.len() == diag.len() − 1`; both empty for the 0×0 matrix).
///
/// Returns `(values, vectors)` with eigenvalues ascending and `vectors[i]`
/// the unit eigenvector of `values[i]`.
///
/// # Panics
///
/// Panics on a length mismatch or if the QL iteration fails to converge
/// (more than 50 sweeps per eigenvalue — numerically unreachable for
/// finite input).
///
/// ```
/// use prop_linalg::tridiagonal_eigen;
///
/// // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
/// let (vals, vecs) = tridiagonal_eigen(&[2.0, 2.0], &[1.0]);
/// assert!((vals[0] - 1.0).abs() < 1e-12);
/// assert!((vals[1] - 3.0).abs() < 1e-12);
/// assert!((vecs[0][0] + vecs[0][1]).abs() < 1e-12); // (1,-1)/√2 direction
/// ```
pub fn tridiagonal_eigen(diag: &[f64], offdiag: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = diag.len();
    assert_eq!(
        offdiag.len(),
        n.saturating_sub(1),
        "subdiagonal must have n-1 entries"
    );
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut d = diag.to_vec();
    // e is shifted so e[i] couples d[i] and d[i+1]; e[n-1] is a sentinel 0.
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(offdiag);
    // v[k][i]: row k, column i of the accumulated transform (columns are
    // eigenvectors).
    let mut v = vec![vec![0.0; n]; n];
    for (k, row) in v.iter_mut().enumerate() {
        row[k] = 1.0;
    }

    let eps = f64::EPSILON;
    let mut f = 0.0;
    let mut tst1: f64 = 0.0;
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                assert!(iter <= 50, "QL iteration failed to converge");
                // Implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;
                // QL sweep.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    let h = c * p;
                    let r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    for row in v.iter_mut() {
                        let h = row[i + 1];
                        row[i + 1] = s * row[i] + c * h;
                        row[i] = c * row[i] - s * h;
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }

    // Sort eigenpairs ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| (0..n).map(|k| v[k][i]).collect())
        .collect();
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_pairs(diag: &[f64], off: &[f64], tol: f64) {
        let n = diag.len();
        let (vals, vecs) = tridiagonal_eigen(diag, off);
        assert_eq!(vals.len(), n);
        for i in 0..n {
            // Residual ||T x − λ x||.
            let x = &vecs[i];
            for r in 0..n {
                let mut tx = diag[r] * x[r];
                if r > 0 {
                    tx += off[r - 1] * x[r - 1];
                }
                if r + 1 < n {
                    tx += off[r] * x[r + 1];
                }
                assert!(
                    (tx - vals[i] * x[r]).abs() < tol,
                    "residual at ({i}, {r}): {} vs {}",
                    tx,
                    vals[i] * x[r]
                );
            }
            // Unit norm.
            let nrm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((nrm - 1.0).abs() < 1e-10);
        }
        // Ascending order.
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn two_by_two() {
        check_pairs(&[2.0, 2.0], &[1.0], 1e-12);
    }

    #[test]
    fn diagonal_matrix() {
        let (vals, _) = tridiagonal_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert!((vals[0] - 1.0).abs() < 1e-14);
        assert!((vals[1] - 2.0).abs() < 1e-14);
        assert!((vals[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn path_laplacian_eigenvalues() {
        // Laplacian of the path P4: diag [1,2,2,1], offdiag [-1,-1,-1].
        // Eigenvalues are 2 − 2 cos(kπ/4), k = 0..3.
        let (vals, vecs) = tridiagonal_eigen(&[1.0, 2.0, 2.0, 1.0], &[-1.0, -1.0, -1.0]);
        for (k, &v) in vals.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!((v - expect).abs() < 1e-12, "k={k}: {v} vs {expect}");
        }
        // Smallest eigenvector is constant.
        let x = &vecs[0];
        for w in x.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-10);
        }
    }

    #[test]
    fn random_tridiagonal_residuals() {
        // Deterministic pseudo-random entries.
        let n = 30;
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let diag: Vec<f64> = (0..n).map(|_| next() * 4.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|_| next() * 2.0).collect();
        check_pairs(&diag, &off, 1e-8);
    }

    #[test]
    fn empty_and_singleton() {
        let (vals, vecs) = tridiagonal_eigen(&[], &[]);
        assert!(vals.is_empty() && vecs.is_empty());
        let (vals, vecs) = tridiagonal_eigen(&[7.0], &[]);
        assert_eq!(vals, vec![7.0]);
        assert_eq!(vecs, vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "n-1 entries")]
    fn length_mismatch_panics() {
        let _ = tridiagonal_eigen(&[1.0, 2.0], &[]);
    }
}
