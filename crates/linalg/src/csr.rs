//! Compressed sparse row matrices.

/// A sparse matrix in CSR form.
///
/// Built from (row, col, value) triplets; duplicates are summed, explicit
/// zeros resulting from cancellation are kept (harmless for matvec).
///
/// ```
/// use prop_linalg::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (0, 0, 1.0)]);
/// let y = m.matvec(&[1.0, 1.0]);
/// assert_eq!(y, vec![4.0, 1.0]); // row 0: (2+1)·1 + 1·1
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range row or column index or a non-finite
    /// value.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, v) in triplets {
            assert!(r < rows, "row {r} out of range for {rows} rows");
            assert!(c < cols, "col {c} out of range for {cols} cols");
            assert!(v.is_finite(), "non-finite matrix entry {v}");
        }
        // Counting sort by row, then per-row sort and merge by column.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for r in 0..rows {
            counts[r + 1] += counts[r];
        }
        let mut cursor = counts[..rows].to_vec();
        let mut by_row: Vec<(u32, f64)> = vec![(0, 0.0); triplets.len()];
        for &(r, c, v) in triplets {
            by_row[cursor[r]] = (c as u32, v);
            cursor[r] += 1;
        }
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0);
        for r in 0..rows {
            let slice = &mut by_row[counts[r]..counts[r + 1]];
            slice.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < slice.len() {
                let col = slice[i].0;
                let mut sum = 0.0;
                while i < slice.len() && slice[i].0 == col {
                    sum += slice[i].1;
                    i += 1;
                }
                col_indices.push(col);
                values.push(sum);
            }
            row_offsets.push(col_indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of one row as parallel (columns, values) slices.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> (&[u32], &[f64]) {
        let lo = self.row_offsets[row];
        let hi = self.row_offsets[row + 1];
        (&self.col_indices[lo..hi], &self.values[lo..hi])
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = A·x` into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input length mismatch");
        assert_eq!(y.len(), self.rows, "matvec output length mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *out = acc;
        }
    }

    /// Returns `true` if the matrix is exactly symmetric (structure and
    /// values). O(nnz log nnz) via a transposed scan; intended for tests
    /// and assertions.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if self.get(*c as usize, r) != *v {
                    return false;
                }
            }
        }
        true
    }

    /// The entry at `(row, col)` (0.0 when not stored).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&(col as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_merge_and_sort() {
        let m = CsrMatrix::from_triplets(2, 3, &[(1, 2, 5.0), (0, 1, 1.0), (1, 2, -2.0), (1, 0, 4.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(0, 0), 0.0);
        let (cols, _) = m.row(1);
        assert_eq!(cols, &[0, 2]); // sorted
    }

    #[test]
    fn matvec_identity_and_general() {
        let eye = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert_eq!(eye.matvec(&[4.0, 5.0, 6.0]), vec![4.0, 5.0, 6.0]);
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 3.0]);
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]);
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0)]);
        assert!(!asym.is_symmetric());
        let rect = CsrMatrix::from_triplets(1, 2, &[]);
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(3, 3, &[(2, 0, 1.0)]);
        assert_eq!(m.matvec(&[1.0, 0.0, 0.0]), vec![0.0, 0.0, 1.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_triplet_panics() {
        let _ = CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_entry_panics() {
        let _ = CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn matvec_length_mismatch_panics() {
        let m = CsrMatrix::from_triplets(2, 2, &[]);
        let _ = m.matvec(&[1.0]);
    }
}
