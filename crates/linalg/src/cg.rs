//! Conjugate gradient for symmetric positive-definite systems.

use crate::csr::CsrMatrix;
use crate::vector::{axpy, dot, norm};

/// Result of a [`conjugate_gradient`] solve.
#[derive(Clone, PartialEq, Debug)]
pub struct CgOutcome {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A·x‖`.
    pub residual_norm: f64,
    /// Whether the residual tolerance was reached.
    pub converged: bool,
}

/// Solves `A·x = b` for symmetric positive-definite `A` by the conjugate
/// gradient method, starting from `x = 0`.
///
/// Stops when `‖r‖ ≤ tolerance · ‖b‖` or after `max_iterations`.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
///
/// ```
/// use prop_linalg::{conjugate_gradient, CsrMatrix};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 3.0), (0, 1, 1.0), (1, 0, 1.0)]);
/// let out = conjugate_gradient(&a, &[1.0, 2.0], 100, 1e-12);
/// assert!(out.converged);
/// assert!((4.0 * out.x[0] + out.x[1] - 1.0).abs() < 1e-9);
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> CgOutcome {
    let n = a.rows();
    assert_eq!(n, a.cols(), "CG needs a square matrix");
    assert_eq!(b.len(), n, "right-hand side length mismatch");
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut rs_old = dot(&r, &r);
    let mut iterations = 0;
    while iterations < max_iterations {
        if rs_old.sqrt() <= tolerance * b_norm {
            break;
        }
        a.matvec_into(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 {
            // Not positive definite along p (or exact null direction);
            // stop rather than diverge.
            break;
        }
        let alpha = rs_old / p_ap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
        iterations += 1;
    }
    let residual_norm = rs_old.sqrt();
    CgOutcome {
        x,
        iterations,
        residual_norm,
        converged: residual_norm <= tolerance * b_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_tridiagonal(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_small_system() {
        let a = spd_tridiagonal(5);
        let x_true = vec![1.0, -2.0, 3.0, 0.5, 1.5];
        let b = a.matvec(&x_true);
        let out = conjugate_gradient(&a, &b, 100, 1e-12);
        assert!(out.converged);
        for (got, want) in out.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_convergence_in_n_steps() {
        let a = spd_tridiagonal(12);
        let b = vec![1.0; 12];
        let out = conjugate_gradient(&a, &b, 12, 1e-12);
        assert!(out.converged, "CG must converge within n iterations");
        assert!(out.iterations <= 12);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = spd_tridiagonal(4);
        let out = conjugate_gradient(&a, &[0.0; 4], 10, 1e-12);
        assert!(out.converged);
        assert_eq!(out.x, vec![0.0; 4]);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = spd_tridiagonal(50);
        let out = conjugate_gradient(&a, &[1.0; 50], 2, 1e-14);
        assert_eq!(out.iterations, 2);
        assert!(!out.converged);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_rhs_panics() {
        let a = spd_tridiagonal(3);
        let _ = conjugate_gradient(&a, &[1.0], 10, 1e-9);
    }
}
