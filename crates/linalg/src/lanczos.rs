//! Lanczos iteration with full reorthogonalisation for the smallest
//! eigenpairs of a symmetric matrix.

use crate::csr::CsrMatrix;
use crate::tridiag::tridiagonal_eigen;
use crate::vector::{axpy, dot, normalize, orthogonalize};

/// Options for [`lanczos_smallest`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LanczosOptions {
    /// How many of the smallest eigenpairs to return.
    pub num_eigenpairs: usize,
    /// Krylov subspace dimension cap (clamped to the matrix order).
    pub max_iterations: usize,
    /// Breakdown tolerance on the Lanczos β coefficients.
    pub tolerance: f64,
    /// Seed for the deterministic start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            num_eigenpairs: 2,
            max_iterations: 120,
            tolerance: 1e-10,
            seed: 1,
        }
    }
}

/// Deterministic xorshift values in `(-0.5, 0.5)` for start vectors (this
/// crate carries no RNG dependency).
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

/// Computes the `num_eigenpairs` smallest eigenpairs of the symmetric
/// matrix `a` by the Lanczos method with full reorthogonalisation,
/// followed by a dense solve of the projected tridiagonal problem.
///
/// Returns `(values, vectors)`, eigenvalues ascending, Ritz vectors of
/// unit norm. Exact in exact arithmetic once the Krylov dimension reaches
/// the matrix order; in practice the default 120 iterations resolve the
/// low end of graph-Laplacian spectra to far better accuracy than the
/// ordering-based partitioners require.
///
/// # Panics
///
/// Panics if `a` is not square, or `num_eigenpairs` exceeds the order.
///
/// ```
/// use prop_linalg::{lanczos_smallest, CsrMatrix, LanczosOptions};
///
/// // Laplacian of the path 0-1-2.
/// let l = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 1.0),
///     (0, 1, -1.0), (1, 0, -1.0), (1, 2, -1.0), (2, 1, -1.0),
/// ]);
/// let (vals, _) = lanczos_smallest(&l, LanczosOptions::default());
/// assert!(vals[0].abs() < 1e-9);          // λ0 = 0
/// assert!((vals[1] - 1.0).abs() < 1e-9);  // λ1 = 1
/// ```
pub fn lanczos_smallest(a: &CsrMatrix, options: LanczosOptions) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "Lanczos needs a square matrix");
    assert!(
        options.num_eigenpairs <= n,
        "requested {} eigenpairs of an order-{n} matrix",
        options.num_eigenpairs
    );
    if options.num_eigenpairs == 0 || n == 0 {
        return (Vec::new(), Vec::new());
    }
    let m = options.max_iterations.clamp(options.num_eigenpairs, n);

    let mut rng = SplitMix(options.seed ^ 0xdead_beef_cafe_f00d);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut q = random_unit(n, &mut rng);
    let mut w = vec![0.0; n];
    loop {
        a.matvec_into(&q, &mut w);
        let alpha = dot(&q, &w);
        axpy(-alpha, &q, &mut w);
        if let Some(prev) = basis.last() {
            let beta_prev = *betas.last().expect("beta recorded with basis");
            axpy(-beta_prev, prev, &mut w);
        }
        // Full reorthogonalisation (twice is enough: Kahan–Parlett).
        orthogonalize(&mut w, &basis);
        orthogonalize(&mut w, std::slice::from_ref(&q));
        orthogonalize(&mut w, &basis);
        alphas.push(alpha);
        basis.push(std::mem::take(&mut q));
        if basis.len() == m {
            break;
        }
        let beta = normalize(&mut w);
        if beta <= options.tolerance {
            // Invariant subspace found: restart with a fresh direction
            // orthogonal to the current basis.
            let mut fresh = random_unit(n, &mut rng);
            orthogonalize(&mut fresh, &basis);
            if normalize(&mut fresh) <= options.tolerance {
                break; // the whole space is spanned
            }
            betas.push(0.0);
            q = fresh;
            w = vec![0.0; n];
        } else {
            betas.push(beta);
            q = std::mem::replace(&mut w, vec![0.0; n]);
        }
    }

    let k = basis.len();
    let (theta, y) = tridiagonal_eigen(&alphas[..k], &betas[..k.saturating_sub(1)]);
    let take = options.num_eigenpairs.min(k);
    let mut values = Vec::with_capacity(take);
    let mut vectors = Vec::with_capacity(take);
    for i in 0..take {
        values.push(theta[i]);
        let mut x = vec![0.0; n];
        for (j, qj) in basis.iter().enumerate() {
            axpy(y[i][j], qj, &mut x);
        }
        normalize(&mut x);
        vectors.push(x);
    }
    (values, vectors)
}

fn random_unit(n: usize, rng: &mut SplitMix) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    if normalize(&mut v) == 0.0 && n > 0 {
        v[0] = 1.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Laplacian of a cycle C_n: eigenvalues 2 − 2cos(2πk/n).
    fn cycle_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            t.push((i, (i + 1) % n, -1.0));
            t.push(((i + 1) % n, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn cycle_spectrum_low_end() {
        let n = 24;
        let l = cycle_laplacian(n);
        let opts = LanczosOptions {
            num_eigenpairs: 3,
            ..LanczosOptions::default()
        };
        let (vals, vecs) = lanczos_smallest(&l, opts);
        let lam1 = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(vals[0].abs() < 1e-8, "λ0 = {}", vals[0]);
        assert!((vals[1] - lam1).abs() < 1e-7, "λ1 = {}", vals[1]);
        assert!((vals[2] - lam1).abs() < 1e-7, "λ2 = {} (doubly degenerate)", vals[2]);
        // Residual check ‖Lx − λx‖.
        for (v, x) in vals.iter().zip(&vecs) {
            let lx = l.matvec(x);
            let res: f64 = lx
                .iter()
                .zip(x)
                .map(|(a, b)| (a - v * b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-6, "residual {res}");
        }
    }

    #[test]
    fn two_components_have_two_zero_eigenvalues() {
        // Two disjoint edges: Laplacian has a 2-dimensional null space.
        let l = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (1, 1, 1.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (2, 3, -1.0),
                (3, 2, -1.0),
            ],
        );
        let opts = LanczosOptions {
            num_eigenpairs: 3,
            ..LanczosOptions::default()
        };
        let (vals, _) = lanczos_smallest(&l, opts);
        assert!(vals[0].abs() < 1e-9);
        assert!(vals[1].abs() < 1e-9);
        assert!((vals[2] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn deterministic_in_seed() {
        let l = cycle_laplacian(12);
        let a = lanczos_smallest(&l, LanczosOptions::default());
        let b = lanczos_smallest(&l, LanczosOptions::default());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn zero_requests() {
        let l = cycle_laplacian(4);
        let opts = LanczosOptions {
            num_eigenpairs: 0,
            ..LanczosOptions::default()
        };
        let (vals, vecs) = lanczos_smallest(&l, opts);
        assert!(vals.is_empty() && vecs.is_empty());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_rejected() {
        let m = CsrMatrix::from_triplets(2, 3, &[]);
        let _ = lanczos_smallest(&m, LanczosOptions::default());
    }
}
