//! Golden-cut regression pins.
//!
//! Pins the exact `best_cut` of the three benchmark-snapshot circuits for
//! PROP (calibrated profile, as benched), FM-bucket, the multilevel
//! V-cycle (standard engine, default knobs), and the V-cycle with
//! flow-based corridor refinement enabled, under the snapshot
//! balance (45–55%), at reduced run counts so the whole file stays cheap
//! enough for the tier-1 gate. Every engine in this suite is fully
//! deterministic, so these are equalities, not tolerances: an accidental
//! behavior change in a "pure perf" PR trips this test in seconds, long
//! before the expensive differential suite runs.
//!
//! If a PR *intends* to change results (new default profile, an
//! algorithmic change), regenerate with:
//!
//! ```sh
//! cargo test --release --test golden_cuts -- --nocapture
//! ```
//!
//! and update the table alongside the differential-oracle mirrors.

use prop_suite::core::{
    cut_cost, partition_kway, BalanceConstraint, KwayConfig, Partitioner, Prop, PropConfig,
};
use prop_suite::fm::FmBucket;
use prop_suite::multilevel::{FlowConfig, Multilevel, MultilevelConfig};
use prop_suite::netlist::suite;

/// (circuit, method, runs, expected best-of-runs cut with base seed 0).
const GOLDEN: [(&str, &str, usize, f64); 12] = [
    ("balu", "PROP", 5, 18.0),
    ("balu", "FM-bucket", 5, 52.0),
    ("balu", "ML", 5, 18.0),
    ("balu", "ML+flow", 5, 18.0),
    ("struct", "PROP", 3, 28.0),
    ("struct", "FM-bucket", 3, 102.0),
    ("struct", "ML", 3, 27.0),
    ("struct", "ML+flow", 3, 25.0),
    ("p2", "PROP", 2, 55.0),
    ("p2", "FM-bucket", 2, 285.0),
    ("p2", "ML", 2, 52.0),
    ("p2", "ML+flow", 2, 47.0),
];

#[test]
fn snapshot_circuit_cuts_are_pinned() {
    let prop = Prop::new(PropConfig::calibrated());
    let fm = FmBucket::default();
    let ml = Multilevel::standard(MultilevelConfig::default());
    let ml_flow = Multilevel::standard(MultilevelConfig {
        flow: FlowConfig {
            enabled: true,
            ..FlowConfig::default()
        },
        ..MultilevelConfig::default()
    });
    let mut failures = Vec::new();
    for (circuit, method, runs, expected) in GOLDEN {
        let graph = suite::by_name(circuit)
            .expect("snapshot circuit")
            .instantiate()
            .expect("valid Table-1 spec");
        let balance =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let partitioner: &dyn Partitioner = match method {
            "PROP" => &prop,
            "FM-bucket" => &fm,
            "ML+flow" => &ml_flow,
            _ => &ml,
        };
        let result = partitioner.run_multi(&graph, balance, runs, 0).expect("non-empty");
        assert_eq!(
            result.cut_cost,
            cut_cost(&graph, &result.partition),
            "{circuit}/{method}: reported cut inconsistent with its partition"
        );
        println!("(\"{circuit}\", \"{method}\", {runs}, {:.1}),", result.cut_cost);
        if result.cut_cost != expected {
            failures.push(format!(
                "{circuit}/{method} ({runs} runs): got {}, pinned {expected}",
                result.cut_cost
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden cuts diverged (regenerate only if the change is intended):\n{}",
        failures.join("\n")
    );
}

/// (circuit, k, runs, expected hyperedge cut, expected connectivity
/// lambda-1) for the recursive k-way driver over the standard V-cycle,
/// uniform budgets, snapshot balance, base seed 0.
const KWAY_GOLDEN: [(&str, usize, usize, f64, f64); 3] = [
    ("balu", 4, 2, 43.0, 48.0),
    ("struct", 4, 2, 64.0, 68.0),
    ("p2", 4, 2, 143.0, 162.0),
];

#[test]
fn kway_snapshot_cuts_are_pinned() {
    let ml = Multilevel::standard(MultilevelConfig::default());
    let mut failures = Vec::new();
    for (circuit, k, runs, cut, connectivity) in KWAY_GOLDEN {
        let graph = suite::by_name(circuit)
            .expect("snapshot circuit")
            .instantiate()
            .expect("valid Table-1 spec");
        let config = KwayConfig {
            runs,
            ..KwayConfig::new(k)
        };
        let report = partition_kway(&graph, &ml, &config).expect("k-way succeeds");
        let got_cut = report.partition.cut_cost(&graph);
        let got_conn = report.partition.connectivity_cost(&graph);
        println!("(\"{circuit}\", {k}, {runs}, {got_cut:.1}, {got_conn:.1}),");
        if got_cut != cut || got_conn != connectivity {
            failures.push(format!(
                "{circuit}/ML k={k} ({runs} runs): got cut {got_cut} lambda {got_conn}, \
                 pinned {cut}/{connectivity}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden k-way cuts diverged (regenerate only if the change is intended):\n{}",
        failures.join("\n")
    );
}
