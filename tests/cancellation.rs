//! Cooperative cancellation semantics of the multi-start harness.
//!
//! The contract: a tripped [`CancelToken`] stops the engines at the next
//! pass boundary, the harness reports `Cancelled`, and the result it
//! hands back is not garbage — it is a balance-feasible partition whose
//! reported cut the independent `prop-verify` oracle reproduces. An
//! untripped token changes nothing at all.

use prop_core::{
    BalanceConstraint, CancelToken, ParallelPolicy, Partitioner, Prop, PropConfig, RunStatus,
};
use prop_fm::FmBucket;
use prop_multilevel::{Multilevel, MultilevelConfig};
use prop_netlist::generate::{generate, GeneratorConfig};
use prop_serve::{server, Client, Json, ServerConfig, SubmitRequest};
use prop_verify::oracle;
use std::time::Duration;

fn medium_graph() -> prop_netlist::Hypergraph {
    generate(&GeneratorConfig::new(400, 460, 1500).with_seed(17)).unwrap()
}

#[test]
fn untripped_token_changes_nothing() {
    let graph = generate(&GeneratorConfig::new(120, 140, 460).with_seed(9)).unwrap();
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    for policy in [ParallelPolicy::Sequential, ParallelPolicy::Threads(3)] {
        let token = CancelToken::new();
        let report = Prop::new(PropConfig::calibrated())
            .run_multi_cancellable(&graph, balance, 4, 11, policy, &token)
            .unwrap();
        assert_eq!(report.status, RunStatus::Completed);
        assert_eq!(report.started_runs, 4);
        let direct = Prop::new(PropConfig::calibrated())
            .run_multi(&graph, balance, 4, 11)
            .unwrap();
        assert_eq!(report.result, direct, "{policy:?}");
    }
}

#[test]
fn pre_tripped_token_still_yields_a_verified_feasible_partition() {
    let graph = medium_graph();
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    let token = CancelToken::new();
    token.cancel();
    for engine in [
        Box::new(Prop::new(PropConfig::calibrated())) as Box<dyn Partitioner>,
        Box::new(FmBucket::default()),
        Box::new(Multilevel::standard(MultilevelConfig { seed: 3, ..MultilevelConfig::default() })),
    ] {
        let report = engine
            .run_multi_cancellable(&graph, balance, 8, 3, ParallelPolicy::Sequential, &token)
            .unwrap();
        assert_eq!(report.status, RunStatus::Cancelled);
        assert_eq!(report.started_runs, 0);
        // Even with zero started runs the harness synthesizes run 0's
        // seeded initial partition: feasible, honestly recounted.
        let result = &report.result;
        assert!(result.partition.is_balanced(balance));
        assert_eq!(result.cut_cost, oracle::naive_cut(&graph, &result.partition));
    }
}

#[test]
fn deadline_stops_runs_early_with_a_usable_partial_result() {
    let graph = medium_graph();
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    const RUNS: usize = 400;
    let token = CancelToken::new();
    // A deadline far shorter than 400 sequential PROP runs on a
    // 400-node circuit: the harness must stop at a pass boundary well
    // before finishing the budget.
    token.set_timeout(Duration::from_millis(25));
    let report = Prop::new(PropConfig::calibrated())
        .run_multi_cancellable(&graph, balance, RUNS, 0, ParallelPolicy::Sequential, &token)
        .unwrap();
    assert_eq!(report.status, RunStatus::Cancelled);
    assert!(
        report.started_runs < RUNS,
        "expected an early stop, got all {RUNS} runs"
    );
    // The partial best is still a real answer: feasible, and its cut is
    // exactly what the independent oracle counts.
    let result = &report.result;
    assert!(result.partition.is_balanced(balance));
    assert_eq!(result.cut_cost, oracle::naive_cut(&graph, &result.partition));
    assert_eq!(result.run_cuts.len(), report.started_runs);
    // The winner is the best of the runs that did complete.
    let best = result.run_cuts.iter().copied().fold(f64::INFINITY, f64::min);
    assert_eq!(result.cut_cost, best);
}

#[test]
fn ml_deadline_stops_vcycles_early_with_a_feasible_partial() {
    let graph = medium_graph();
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    const RUNS: usize = 4000;
    let ml = Multilevel::standard(MultilevelConfig { seed: 0, ..MultilevelConfig::default() });

    // Untripped: the cancellable harness is bit-identical to run_multi.
    let token = CancelToken::new();
    let report = ml
        .run_multi_cancellable(&graph, balance, 3, 0, ParallelPolicy::Sequential, &token)
        .unwrap();
    assert_eq!(report.status, RunStatus::Completed);
    let direct = ml.run_multi(&graph, balance, 3, 0).unwrap();
    assert_eq!(report.result, direct);

    // Deadline: far fewer V-cycles than the budget, but the surfaced
    // partial — possibly from a run cancelled mid-uncoarsening, where
    // refinement is skipped but projection continues — is feasible and
    // its cut honest.
    let token = CancelToken::new();
    token.set_timeout(Duration::from_millis(25));
    let report = ml
        .run_multi_cancellable(&graph, balance, RUNS, 0, ParallelPolicy::Sequential, &token)
        .unwrap();
    assert_eq!(report.status, RunStatus::Cancelled);
    assert!(report.started_runs < RUNS, "expected an early stop");
    let result = &report.result;
    assert!(result.partition.is_balanced(balance));
    assert_eq!(result.cut_cost, oracle::naive_cut(&graph, &result.partition));
}

#[test]
fn parallel_cancellation_keeps_the_run_prefix_contiguous() {
    let graph = medium_graph();
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    const RUNS: usize = 400;
    let token = CancelToken::new();
    token.set_timeout(Duration::from_millis(25));
    let report = Prop::new(PropConfig::calibrated())
        .run_multi_cancellable(&graph, balance, RUNS, 0, ParallelPolicy::Threads(3), &token)
        .unwrap();
    assert_eq!(report.status, RunStatus::Cancelled);
    assert!(report.started_runs < RUNS);
    let result = &report.result;
    // Started runs form the prefix 0..k: the trajectory has no holes,
    // even though runs in flight at the trip stopped at a pass boundary
    // (so their cuts may differ from an uninterrupted run's).
    assert_eq!(result.run_cuts.len(), report.started_runs);
    assert!(report.started_runs > 0, "workers should have claimed runs");
    assert!(result.partition.is_balanced(balance));
    assert_eq!(result.cut_cost, oracle::naive_cut(&graph, &result.partition));
    let best = result.run_cuts.iter().copied().fold(f64::INFINITY, f64::min);
    assert_eq!(result.cut_cost, best);
}

#[test]
fn daemon_cancel_and_timeout_report_partial_results() {
    let handle = server::start(&ServerConfig {
        workers: 1,
        queue_cap: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let payload = prop_netlist::format::write_hgr(&medium_graph());

    // A deadline-bound job times out but still reports a cut.
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client
        .submit(&SubmitRequest {
            engine: "prop".into(),
            runs: 400,
            timeout_ms: 25,
            payload: payload.clone(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("timed_out"),
        "{}",
        resp.render()
    );
    assert!(resp.get("cut").and_then(Json::as_f64).is_some());

    // The ml engine honors job deadlines too (V-cycles poll the token at
    // level boundaries) and still reports a usable cut.
    let resp = client
        .submit(&SubmitRequest {
            engine: "ml".into(),
            runs: 4000,
            timeout_ms: 25,
            payload: payload.clone(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("timed_out"),
        "{}",
        resp.render()
    );
    assert!(resp.get("cut").and_then(Json::as_f64).is_some());

    // An explicit cancel is reported as cancelled, not timed out.
    let resp = client
        .submit(&SubmitRequest {
            engine: "prop".into(),
            runs: 400,
            payload,
            ..SubmitRequest::default()
        })
        .unwrap();
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    let cancel = client.cancel(job).unwrap();
    assert_eq!(cancel.get("ok").and_then(Json::as_bool), Some(true));
    let done = client.wait(job).unwrap();
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        done.render()
    );
    assert_eq!(done.get("cancel_requested").and_then(Json::as_bool), Some(true));
    assert!(done.get("cut").and_then(Json::as_f64).is_some());

    client.shutdown().unwrap();
    handle.join();
}
