//! Integration: the size-constrained balance criterion (§1's "size
//! constraints" remark) across every iterative partitioner.

use prop_suite::core::{
    cut_cost, BalanceConstraint, Partitioner, Prop, PropConfig, Side, SideWeights,
};
use prop_suite::fm::{FmBucket, FmTree, La};
use prop_suite::netlist::generate::{generate, GeneratorConfig};
use prop_suite::netlist::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A clustered circuit whose node sizes vary by a factor of 8.
fn weighted_circuit(seed: u64) -> Hypergraph {
    let base = generate(&GeneratorConfig::new(200, 220, 740).with_seed(seed)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
    let mut b = HypergraphBuilder::new(base.num_nodes());
    for net in base.nets() {
        b.add_net(1.0, base.pins_of(net).iter().map(|v| v.index()))
            .unwrap();
    }
    let weights: Vec<f64> = (0..base.num_nodes())
        .map(|_| [0.5, 1.0, 2.0, 4.0][rng.gen_range(0..4)])
        .collect();
    b.set_node_weights(weights).unwrap();
    b.build().unwrap()
}

fn weight_feasible(graph: &Hypergraph, balance: BalanceConstraint, partition: &prop_suite::core::Bipartition) -> bool {
    let w = SideWeights::new(graph, partition);
    let counts = [partition.count(Side::A), partition.count(Side::B)];
    balance.is_feasible(counts, w.as_array())
}

#[test]
fn weighted_constraint_is_satisfiable_and_respected() {
    let graph = weighted_circuit(1);
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    assert!(balance.is_weighted());
    let methods: Vec<Box<dyn Partitioner>> = vec![
        Box::new(FmBucket::default()),
        Box::new(FmTree::default()),
        Box::new(La::new(2)),
        Box::new(Prop::new(PropConfig::calibrated())),
    ];
    for method in methods {
        let result = method.run_multi(&graph, balance, 3, 0).unwrap();
        assert!(
            weight_feasible(&graph, balance, &result.partition),
            "{} violated the weighted balance",
            method.name()
        );
        assert_eq!(result.cut_cost, cut_cost(&graph, &result.partition));
    }
}

#[test]
fn weighted_prop_still_beats_weighted_fm() {
    let graph = weighted_circuit(2);
    let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    let fm = FmBucket::default().run_multi(&graph, balance, 10, 0).unwrap();
    let prop = Prop::new(PropConfig::calibrated())
        .run_multi(&graph, balance, 10, 0)
        .unwrap();
    assert!(
        prop.cut_cost <= fm.cut_cost,
        "PROP {} vs FM {}",
        prop.cut_cost,
        fm.cut_cost
    );
}

#[test]
fn one_huge_node_is_handled() {
    // A node holding ~40% of the total area: the constraint must relax
    // enough to admit it on one side, and partitioners must still finish.
    let mut b = HypergraphBuilder::new(10);
    for i in 0..9 {
        b.add_net(1.0, [i, i + 1]).unwrap();
    }
    let mut weights = vec![1.0; 10];
    weights[0] = 6.0;
    b.set_node_weights(weights).unwrap();
    let graph = b.build().unwrap();
    let balance = BalanceConstraint::weighted(0.5, 0.5, &graph).unwrap();
    let result = Prop::new(PropConfig::calibrated())
        .run_multi(&graph, balance, 3, 0)
        .unwrap();
    assert!(weight_feasible(&graph, balance, &result.partition));
    // A path with the heavy node at one end cuts a single net optimally.
    assert!(result.cut_cost <= 2.0);
}

#[test]
fn unit_weights_behave_identically_through_both_constructors() {
    let graph = generate(&GeneratorConfig::new(80, 90, 300).with_seed(5)).unwrap();
    let by_count = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
    let by_weight = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
    assert_eq!(by_count, by_weight);
    let prop = Prop::new(PropConfig::calibrated());
    let a = prop.run_multi(&graph, by_count, 3, 1).unwrap();
    let b = prop.run_multi(&graph, by_weight, 3, 1).unwrap();
    assert_eq!(a, b);
}
