//! Property net over the full multilevel V-cycle engine.
//!
//! The single-level coarsening invariants live in
//! `crates/multilevel/tests/proptest_coarsen.rs`; this file exercises
//! whole coarsening *stacks* and the engine's public API. Three
//! invariants on arbitrary weighted hypergraphs:
//!
//! 1. **Multi-level projection is cut-exact**: a partition of the
//!    coarsest circuit projected down through every level reaches the
//!    finest circuit with exactly the same cut and side weights.
//! 2. **Weight conservation**: every level of a coarsening stack carries
//!    the same total node weight.
//! 3. **Determinism in the seed alone**: the engine's multi-start result
//!    is bit-identical under 1, 2, and 4 worker threads, and its
//!    reported cut is honest (the independent oracle recounts it) and
//!    balance-feasible.
//!
//! Plus a pin of the prefix-stable seeding contract: raising
//! `coarsest_starts` appends new initial-bisection draws without
//! perturbing any earlier start's.

use proptest::prelude::*;
use prop_suite::core::{
    BalanceConstraint, Bipartition, CutState, ParallelPolicy, Partitioner, Side,
};
use prop_suite::multilevel::coarsen::{coarsen, CoarseLevel};
use prop_suite::multilevel::{Multilevel, MultilevelConfig};
use prop_suite::netlist::{Hypergraph, HypergraphBuilder};
use prop_suite::verify::oracle;

/// Strategy: a random connected-ish hypergraph with 6..48 nodes, nets of
/// 2..5 pins, and small integer node weights.
fn arb_weighted_graph() -> impl Strategy<Value = Hypergraph> {
    (6usize..48).prop_flat_map(|n| {
        let nets = proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 2..70);
        let weights = proptest::collection::vec(1u32..4, n);
        (nets, weights).prop_map(move |(nets, weights)| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                b.add_net(1.0, pins).expect("valid pins");
            }
            b.set_node_weights(weights.into_iter().map(f64::from).collect())
                .expect("positive weights");
            b.build().expect("valid graph")
        })
    })
}

/// Same shape with unit node weights, so the bisection balance the
/// multi-start harness seeds under is always feasible.
fn arb_unit_graph() -> impl Strategy<Value = Hypergraph> {
    (8usize..48).prop_flat_map(|n| {
        let nets = proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 2..70);
        nets.prop_map(move |nets| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                b.add_net(1.0, pins).expect("valid pins");
            }
            b.build().expect("valid graph")
        })
    })
}

/// Coarsens until a stall or the floor, exactly like the engine does.
fn coarsen_stack(graph: &Hypergraph, seed: u64) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    for l in 0..8u64 {
        let fine = levels.last().map_or(graph, |lvl| &lvl.coarse);
        if fine.num_nodes() <= 4 {
            break;
        }
        let level = coarsen(fine, 8, seed.wrapping_add(l));
        if level.coarse.num_nodes() == fine.num_nodes() {
            break;
        }
        levels.push(level);
    }
    levels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1 and 2: project a partition of the coarsest level all
    /// the way down; cut, per-side weight, and total weight survive
    /// every hop exactly.
    #[test]
    fn multi_level_projection_is_cut_and_weight_exact(
        g in arb_weighted_graph(),
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let levels = coarsen_stack(&g, seed);
        for level in &levels {
            prop_assert!(
                (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9
            );
        }
        let coarsest = levels.last().map_or(&g, |l| &l.coarse);
        let sides: Vec<Side> = (0..coarsest.num_nodes())
            .map(|i| if (mask >> (i % 64)) & 1 == 1 { Side::A } else { Side::B })
            .collect();
        let mut part = Bipartition::from_sides(sides);
        let cut = CutState::new(coarsest, &part).cut_cost();
        let weight_a: f64 = coarsest
            .nodes()
            .filter(|&v| part.side(v) == Side::A)
            .map(|v| coarsest.node_weight(v))
            .sum();
        for level in levels.iter().rev() {
            part = level.project(&part);
        }
        prop_assert_eq!(part.len(), g.num_nodes());
        let fine_cut = CutState::new(&g, &part).cut_cost();
        prop_assert!((fine_cut - cut).abs() < 1e-9, "cut drifted {cut} -> {fine_cut}");
        let fine_weight_a: f64 = g
            .nodes()
            .filter(|&v| part.side(v) == Side::A)
            .map(|v| g.node_weight(v))
            .sum();
        prop_assert!((fine_weight_a - weight_a).abs() < 1e-9);
    }

    /// Invariant 3: the engine result is a function of the seed alone —
    /// identical across 1/2/4 worker threads — and the reported winner
    /// is feasible with an oracle-exact cut.
    #[test]
    fn vcycle_result_is_seed_deterministic_across_threads(
        g in arb_unit_graph(),
        seed in 0u64..1000,
    ) {
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let ml = Multilevel::standard(MultilevelConfig {
            coarsest_nodes: 8,
            coarsest_starts: 2,
            seed,
            ..MultilevelConfig::default()
        });
        let sequential = ml.run_multi(&g, balance, 3, seed).unwrap();
        prop_assert!(sequential.partition.is_balanced(balance));
        prop_assert_eq!(
            sequential.cut_cost,
            oracle::naive_cut(&g, &sequential.partition)
        );
        for threads in [1usize, 2, 4] {
            let fanned = ml
                .run_multi_parallel(&g, balance, 3, seed, ParallelPolicy::Threads(threads))
                .unwrap();
            prop_assert_eq!(&fanned, &sequential, "diverged at {} threads", threads);
        }
    }

    /// Prefix-stable seeding: the coarsest-start cut vector for `k`
    /// starts is a prefix of the vector for `k + extra` starts.
    #[test]
    fn coarsest_start_draws_are_prefix_stable(
        g in arb_unit_graph(),
        seed in any::<u64>(),
        extra in 1usize..6,
    ) {
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let base = MultilevelConfig {
            coarsest_nodes: 8,
            coarsest_starts: 3,
            seed,
            ..MultilevelConfig::default()
        };
        let short = Multilevel::standard(base)
            .coarsest_start_cuts(&g, balance)
            .unwrap();
        let long = Multilevel::standard(MultilevelConfig {
            coarsest_starts: base.coarsest_starts + extra,
            ..base
        })
        .coarsest_start_cuts(&g, balance)
        .unwrap();
        prop_assert_eq!(short.len(), base.coarsest_starts);
        prop_assert_eq!(long.len(), base.coarsest_starts + extra);
        prop_assert_eq!(&short[..], &long[..short.len()]);
    }
}
