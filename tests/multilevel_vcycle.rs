//! Property net over the full multilevel V-cycle engine.
//!
//! The single-level coarsening invariants live in
//! `crates/multilevel/tests/proptest_coarsen.rs`; this file exercises
//! whole coarsening *stacks* and the engine's public API. Three
//! invariants on arbitrary weighted hypergraphs:
//!
//! 1. **Multi-level projection is cut-exact**: a partition of the
//!    coarsest circuit projected down through every level reaches the
//!    finest circuit with exactly the same cut and side weights.
//! 2. **Weight conservation**: every level of a coarsening stack carries
//!    the same total node weight.
//! 3. **Determinism in the seed alone**: the engine's multi-start result
//!    is bit-identical under 1, 2, and 4 worker threads, and its
//!    reported cut is honest (the independent oracle recounts it) and
//!    balance-feasible.
//!
//! Plus a pin of the prefix-stable seeding contract: raising
//! `coarsest_starts` appends new initial-bisection draws without
//! perturbing any earlier start's.
//!
//! The fixed (non-property) tests at the bottom cover the intra-run
//! parallel engine: the same seed at `intra` worker counts 1, 2, and 4
//! must produce an identical cut, assignment hash, and coarsest-start
//! cut vector; and cancellation mid-V-cycle — including mid-round inside
//! the synchronous refiner — must leave a balance-feasible partial with
//! an oracle-exact reported cut.

use proptest::prelude::*;
use prop_suite::core::{
    BalanceConstraint, Bipartition, CancelToken, CutState, ParallelPolicy, Partitioner, RunStatus,
    Side,
};
use prop_suite::multilevel::coarsen::{coarsen, CoarseLevel};
use prop_suite::multilevel::{Multilevel, MultilevelConfig};
use prop_suite::netlist::{Hypergraph, HypergraphBuilder};
use prop_suite::verify::oracle;

/// Strategy: a random connected-ish hypergraph with 6..48 nodes, nets of
/// 2..5 pins, and small integer node weights.
fn arb_weighted_graph() -> impl Strategy<Value = Hypergraph> {
    (6usize..48).prop_flat_map(|n| {
        let nets = proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 2..70);
        let weights = proptest::collection::vec(1u32..4, n);
        (nets, weights).prop_map(move |(nets, weights)| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                b.add_net(1.0, pins).expect("valid pins");
            }
            b.set_node_weights(weights.into_iter().map(f64::from).collect())
                .expect("positive weights");
            b.build().expect("valid graph")
        })
    })
}

/// Same shape with unit node weights, so the bisection balance the
/// multi-start harness seeds under is always feasible.
fn arb_unit_graph() -> impl Strategy<Value = Hypergraph> {
    (8usize..48).prop_flat_map(|n| {
        let nets = proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 2..70);
        nets.prop_map(move |nets| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                b.add_net(1.0, pins).expect("valid pins");
            }
            b.build().expect("valid graph")
        })
    })
}

/// Coarsens until a stall or the floor, exactly like the engine does.
fn coarsen_stack(graph: &Hypergraph, seed: u64) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    for l in 0..8u64 {
        let fine = levels.last().map_or(graph, |lvl| &lvl.coarse);
        if fine.num_nodes() <= 4 {
            break;
        }
        let level = coarsen(fine, 8, seed.wrapping_add(l));
        if level.coarse.num_nodes() == fine.num_nodes() {
            break;
        }
        levels.push(level);
    }
    levels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1 and 2: project a partition of the coarsest level all
    /// the way down; cut, per-side weight, and total weight survive
    /// every hop exactly.
    #[test]
    fn multi_level_projection_is_cut_and_weight_exact(
        g in arb_weighted_graph(),
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let levels = coarsen_stack(&g, seed);
        for level in &levels {
            prop_assert!(
                (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9
            );
        }
        let coarsest = levels.last().map_or(&g, |l| &l.coarse);
        let sides: Vec<Side> = (0..coarsest.num_nodes())
            .map(|i| if (mask >> (i % 64)) & 1 == 1 { Side::A } else { Side::B })
            .collect();
        let mut part = Bipartition::from_sides(sides);
        let cut = CutState::new(coarsest, &part).cut_cost();
        let weight_a: f64 = coarsest
            .nodes()
            .filter(|&v| part.side(v) == Side::A)
            .map(|v| coarsest.node_weight(v))
            .sum();
        for level in levels.iter().rev() {
            part = level.project(&part);
        }
        prop_assert_eq!(part.len(), g.num_nodes());
        let fine_cut = CutState::new(&g, &part).cut_cost();
        prop_assert!((fine_cut - cut).abs() < 1e-9, "cut drifted {cut} -> {fine_cut}");
        let fine_weight_a: f64 = g
            .nodes()
            .filter(|&v| part.side(v) == Side::A)
            .map(|v| g.node_weight(v))
            .sum();
        prop_assert!((fine_weight_a - weight_a).abs() < 1e-9);
    }

    /// Invariant 3: the engine result is a function of the seed alone —
    /// identical across 1/2/4 worker threads — and the reported winner
    /// is feasible with an oracle-exact cut.
    #[test]
    fn vcycle_result_is_seed_deterministic_across_threads(
        g in arb_unit_graph(),
        seed in 0u64..1000,
    ) {
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let ml = Multilevel::standard(MultilevelConfig {
            coarsest_nodes: 8,
            coarsest_starts: 2,
            seed,
            ..MultilevelConfig::default()
        });
        let sequential = ml.run_multi(&g, balance, 3, seed).unwrap();
        prop_assert!(sequential.partition.is_balanced(balance));
        prop_assert_eq!(
            sequential.cut_cost,
            oracle::naive_cut(&g, &sequential.partition)
        );
        for threads in [1usize, 2, 4] {
            let fanned = ml
                .run_multi_parallel(&g, balance, 3, seed, ParallelPolicy::Threads(threads))
                .unwrap();
            prop_assert_eq!(&fanned, &sequential, "diverged at {} threads", threads);
        }
    }

    /// Prefix-stable seeding: the coarsest-start cut vector for `k`
    /// starts is a prefix of the vector for `k + extra` starts.
    #[test]
    fn coarsest_start_draws_are_prefix_stable(
        g in arb_unit_graph(),
        seed in any::<u64>(),
        extra in 1usize..6,
    ) {
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let base = MultilevelConfig {
            coarsest_nodes: 8,
            coarsest_starts: 3,
            seed,
            ..MultilevelConfig::default()
        };
        let short = Multilevel::standard(base)
            .coarsest_start_cuts(&g, balance)
            .unwrap();
        let long = Multilevel::standard(MultilevelConfig {
            coarsest_starts: base.coarsest_starts + extra,
            ..base
        })
        .coarsest_start_cuts(&g, balance)
        .unwrap();
        prop_assert_eq!(short.len(), base.coarsest_starts);
        prop_assert_eq!(long.len(), base.coarsest_starts + extra);
        prop_assert_eq!(&short[..], &long[..short.len()]);
    }
}

/// FNV-1a over the assignment vector — the same digest `prop-serve`
/// reports for its jobs, so a divergence shows up as one number.
fn assignment_hash(partition: &Bipartition) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..partition.len() {
        let byte = match partition.side(prop_suite::netlist::NodeId::new(i)) {
            Side::A => b'A',
            Side::B => b'B',
        };
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A mid-size fixed circuit: large enough for a few coarsening levels
/// and several synchronous rounds, small enough for tier-1 wall-clock.
fn intra_circuit() -> Hypergraph {
    prop_suite::netlist::generate::generate(
        &prop_suite::netlist::generate::GeneratorConfig::new(600, 660, 2200).with_seed(42),
    )
    .expect("valid generator config")
}

fn intra_config(threads: usize, seed: u64) -> MultilevelConfig {
    MultilevelConfig {
        intra: ParallelPolicy::Threads(threads),
        seed,
        ..MultilevelConfig::default()
    }
}

/// The intra-parallel engine is a function of the seed alone: worker
/// counts 1, 2, and 4 agree on the cut, the exact assignment (witnessed
/// by its FNV hash), and the coarsest-start cut vector.
#[test]
fn intra_run_parallelism_is_worker_count_invariant() {
    let g = intra_circuit();
    let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
    for seed in [0u64, 9] {
        let base_engine = Multilevel::standard(intra_config(1, seed));
        let base = base_engine.run_multi(&g, balance, 2, seed).unwrap();
        assert!(base.partition.is_balanced(balance));
        assert_eq!(base.cut_cost, oracle::naive_cut(&g, &base.partition));
        let base_starts = base_engine.coarsest_start_cuts(&g, balance).unwrap();
        for threads in [2usize, 4] {
            let engine = Multilevel::standard(intra_config(threads, seed));
            let result = engine.run_multi(&g, balance, 2, seed).unwrap();
            assert_eq!(result.cut_cost, base.cut_cost, "cut diverged at {threads} workers");
            assert_eq!(
                assignment_hash(&result.partition),
                assignment_hash(&base.partition),
                "assignment diverged at {threads} workers"
            );
            assert_eq!(&result, &base, "full result diverged at {threads} workers");
            assert_eq!(
                engine.coarsest_start_cuts(&g, balance).unwrap(),
                base_starts,
                "coarsest starts diverged at {threads} workers"
            );
        }
    }
}

/// A pre-tripped token: the intra engine stops at the first synchronous
/// round boundary of the first run, and the partial it reports is still
/// balance-feasible with an oracle-exact cut.
#[test]
fn pre_tripped_cancellation_keeps_the_intra_partial_feasible() {
    let g = intra_circuit();
    let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
    let engine = Multilevel::standard(intra_config(2, 5));
    let token = CancelToken::new();
    token.cancel();
    let report = engine
        .run_multi_cancellable(&g, balance, 3, 5, ParallelPolicy::Sequential, &token)
        .unwrap();
    assert_eq!(report.status, RunStatus::Cancelled);
    assert!(report.result.partition.is_balanced(balance));
    assert_eq!(
        report.result.cut_cost,
        oracle::naive_cut(&g, &report.result.partition)
    );
}

/// A token tripped from another thread mid-flight lands inside a
/// synchronous round with high probability; wherever it lands, the
/// reported partial must be feasible and its cut honest.
#[test]
fn mid_round_cancellation_keeps_the_intra_partial_feasible() {
    let g = intra_circuit();
    let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
    let engine = Multilevel::standard(intra_config(2, 3));
    let token = CancelToken::new();
    let tripper = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            token.cancel();
        })
    };
    let report = engine
        .run_multi_cancellable(&g, balance, 200, 3, ParallelPolicy::Sequential, &token)
        .unwrap();
    tripper.join().unwrap();
    assert!(report.result.partition.is_balanced(balance));
    assert_eq!(
        report.result.cut_cost,
        oracle::naive_cut(&g, &report.result.partition)
    );
    // Whatever prefix of the 200 runs completed, each run's recorded cut
    // is what the winner selection saw: the best equals the reported cut.
    let best = report
        .result
        .run_cuts
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert_eq!(best, report.result.cut_cost);
}

use prop_suite::multilevel::FlowConfig;

fn flow_config(threads: usize, seed: u64) -> MultilevelConfig {
    MultilevelConfig {
        flow: FlowConfig {
            enabled: true,
            ..FlowConfig::default()
        },
        ..intra_config(threads, seed)
    }
}

/// The corridor-flow pass draws no randomness and runs sequentially, so
/// the flow-enabled intra engine stays worker-count invariant: 1, 2, and
/// 4 workers (and a repeat at the same count) agree on the exact
/// assignment, and the reported cut never exceeds the flow-off engine's.
#[test]
fn flow_refinement_is_worker_count_invariant() {
    let g = intra_circuit();
    let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
    for seed in [0u64, 9] {
        let base = Multilevel::standard(flow_config(1, seed))
            .run_multi(&g, balance, 2, seed)
            .unwrap();
        assert!(base.partition.is_balanced(balance));
        assert_eq!(base.cut_cost, oracle::naive_cut(&g, &base.partition));
        let no_flow = Multilevel::standard(intra_config(1, seed))
            .run_multi(&g, balance, 2, seed)
            .unwrap();
        assert!(
            base.cut_cost <= no_flow.cut_cost,
            "flow worsened the cut: {} > {}",
            base.cut_cost,
            no_flow.cut_cost
        );
        for threads in [1usize, 2, 4] {
            let result = Multilevel::standard(flow_config(threads, seed))
                .run_multi(&g, balance, 2, seed)
                .unwrap();
            assert_eq!(&result, &base, "flow run diverged at {threads} workers");
            assert_eq!(
                assignment_hash(&result.partition),
                assignment_hash(&base.partition)
            );
        }
    }
}

/// `flow.enabled = false` keeps the engine byte-identical to the default
/// configuration, whatever the other flow knobs say — the master switch
/// alone decides whether the pass can perturb a V-cycle.
#[test]
fn disabled_flow_is_byte_identical_to_the_classic_engine() {
    let g = intra_circuit();
    let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
    let classic = Multilevel::standard(MultilevelConfig {
        seed: 7,
        ..MultilevelConfig::default()
    })
    .run_multi(&g, balance, 3, 7)
    .unwrap();
    let flow_off = Multilevel::standard(MultilevelConfig {
        seed: 7,
        flow: FlowConfig {
            enabled: false,
            corridor_nodes: 17, // ignored while disabled
        },
        ..MultilevelConfig::default()
    })
    .run_multi(&g, balance, 3, 7)
    .unwrap();
    assert_eq!(flow_off, classic);
    assert_eq!(
        assignment_hash(&flow_off.partition),
        assignment_hash(&classic.partition)
    );
}

/// A token tripped mid-flight with flow enabled lands inside a Dinic
/// augmentation round with decent probability; wherever it lands, the
/// interrupted corridor must be abandoned (never half-applied) and the
/// reported partial stays feasible with an oracle-exact cut.
#[test]
fn mid_corridor_cancellation_keeps_the_flow_partial_feasible() {
    let g = intra_circuit();
    let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
    let engine = Multilevel::standard(flow_config(2, 3));
    let token = CancelToken::new();
    let tripper = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            token.cancel();
        })
    };
    let report = engine
        .run_multi_cancellable(&g, balance, 200, 3, ParallelPolicy::Sequential, &token)
        .unwrap();
    tripper.join().unwrap();
    assert!(report.result.partition.is_balanced(balance));
    assert_eq!(
        report.result.cut_cost,
        oracle::naive_cut(&g, &report.result.partition)
    );
    let best = report
        .result
        .run_cuts
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert_eq!(best, report.result.cut_cost);

    // A pre-tripped token stops before any corridor work at all.
    let token = CancelToken::new();
    token.cancel();
    let report = engine
        .run_multi_cancellable(&g, balance, 3, 5, ParallelPolicy::Sequential, &token)
        .unwrap();
    assert_eq!(report.status, RunStatus::Cancelled);
    assert!(report.result.partition.is_balanced(balance));
}
