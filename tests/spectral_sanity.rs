//! First-touch sanity coverage for the spectral/analytical partitioners
//! of `crates/spectral`: `Eig1`, `MeloStyle`, `ParaboliStyle`, and
//! `WindowStyle`.
//!
//! These are one-shot global methods, so the invariants differ from the
//! iterative engines': every result must be balance-feasible with an
//! oracle-exact reported cut, repeat calls must be bit-identical (the
//! algorithms are deterministic), weighted balance constraints must be
//! honored, and on a circuit with an obvious two-cluster structure each
//! method must find a near-minimal cut.

use prop_suite::core::{BalanceConstraint, GlobalPartitioner};
use prop_suite::netlist::generate::{generate, GeneratorConfig};
use prop_suite::netlist::HypergraphBuilder;
use prop_suite::spectral::{Eig1, MeloStyle, ParaboliStyle, WindowStyle};
use prop_suite::verify::oracle;

fn methods() -> Vec<Box<dyn GlobalPartitioner>> {
    vec![
        Box::new(Eig1::default()),
        Box::new(MeloStyle::default()),
        Box::new(ParaboliStyle::default()),
        Box::new(WindowStyle::default()),
    ]
}

#[test]
fn spectral_methods_are_feasible_exact_and_deterministic() {
    let graph = generate(&GeneratorConfig::new(72, 84, 280).with_seed(11)).unwrap();
    let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
    for method in methods() {
        let first = method.partition(&graph, balance).unwrap();
        assert!(
            first.partition.is_balanced(balance),
            "{} unbalanced",
            method.name()
        );
        assert_eq!(
            first.cut_cost,
            oracle::naive_cut(&graph, &first.partition),
            "{} reported a cut its partition does not have",
            method.name()
        );
        let second = method.partition(&graph, balance).unwrap();
        assert_eq!(first, second, "{} is nondeterministic", method.name());
    }
}

#[test]
fn spectral_methods_honor_weighted_balance() {
    let base = generate(&GeneratorConfig::new(60, 72, 240).with_seed(13)).unwrap();
    let mut b = HypergraphBuilder::new(base.num_nodes());
    for net in base.nets() {
        b.add_net(
            base.net_weight(net),
            base.pins_of(net).iter().map(|p| p.index()),
        )
        .unwrap();
    }
    // Deterministic non-unit node weights in 1..=3.
    b.set_node_weights((0..base.num_nodes()).map(|i| 1.0 + ((i * 7) % 3) as f64).collect())
        .unwrap();
    let graph = b.build().unwrap();
    let balance = BalanceConstraint::weighted(0.4, 0.6, &graph).unwrap();
    for method in methods() {
        let result = method.partition(&graph, balance).unwrap();
        assert!(
            result.partition.is_balanced(balance),
            "{} broke the weighted balance",
            method.name()
        );
        assert_eq!(
            result.cut_cost,
            oracle::naive_cut(&graph, &result.partition),
            "{}",
            method.name()
        );
    }
}

#[test]
fn spectral_methods_split_two_cliques_along_the_bridge() {
    // Two 8-node cliques (all pairwise 2-pin nets) joined by one bridge
    // net. Under the 45-55% balance the sides must have 8 nodes each, so
    // the minimum cut is the bridge alone.
    let n = 16;
    let mut b = HypergraphBuilder::new(n);
    for side in [0usize, 8] {
        for i in 0..8 {
            for j in (i + 1)..8 {
                b.add_net(1.0, vec![side + i, side + j]).unwrap();
            }
        }
    }
    b.add_net(1.0, vec![0, 8]).unwrap();
    let graph = b.build().unwrap();
    let balance = BalanceConstraint::new(0.45, 0.55, n).unwrap();
    for method in methods() {
        let result = method.partition(&graph, balance).unwrap();
        assert!(result.partition.is_balanced(balance), "{}", method.name());
        assert_eq!(
            result.cut_cost,
            1.0,
            "{} missed the bridge cut",
            method.name()
        );
    }
}

#[test]
fn fiedler_vector_separates_the_clusters() {
    // On the two-clique circuit the Fiedler vector's sign structure is
    // the cluster indicator: every node agrees in sign with its clique
    // mates and differs from the other clique.
    let n = 12;
    let mut b = HypergraphBuilder::new(n);
    for side in [0usize, 6] {
        for i in 0..6 {
            for j in (i + 1)..6 {
                b.add_net(1.0, vec![side + i, side + j]).unwrap();
            }
        }
    }
    b.add_net(1.0, vec![5, 6]).unwrap();
    let graph = b.build().unwrap();
    let fiedler = Eig1::default().fiedler_vector(&graph).unwrap();
    assert_eq!(fiedler.len(), n);
    let first_cluster_sign = fiedler[0].signum();
    assert!(fiedler[..6].iter().all(|&x| x.signum() == first_cluster_sign));
    assert!(fiedler[6..].iter().all(|&x| x.signum() == -first_cluster_sign));
}
