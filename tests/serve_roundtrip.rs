//! Round-trip equivalence between the `prop-serve` daemon and direct
//! library calls.
//!
//! The daemon's whole value proposition is that putting a socket in
//! front of the engines changes *nothing*: for each engine, the cut,
//! the per-run seed trajectory, and the full node→side assignment
//! (compared by FNV-1a hash) fetched over the wire must be bit-identical
//! to `run_multi_parallel` on the same inputs — including across
//! concurrent clients hammering one daemon.

use prop_core::{BalanceConstraint, ParallelPolicy, Partitioner, Prop, PropConfig};
use prop_fm::FmBucket;
use prop_multilevel::{Multilevel, MultilevelConfig};
use prop_netlist::format;
use prop_netlist::generate::{generate, GeneratorConfig};
use prop_serve::{engine, server, Client, Json, ServerConfig, SubmitRequest};
use std::thread;

const RUNS: usize = 3;
const SEED: u64 = 41;

fn test_graph(seed: u64) -> prop_netlist::Hypergraph {
    generate(&GeneratorConfig::new(80, 92, 300).with_seed(seed)).unwrap()
}

/// The direct-library expectation for one engine: (cut, run_cuts,
/// assignment hash).
fn direct_expectation(engine_name: &str, graph: &prop_netlist::Hypergraph) -> (f64, Vec<f64>, u64) {
    let balance = BalanceConstraint::weighted(0.45, 0.55, graph).unwrap();
    let result = match engine_name {
        "prop" => Prop::new(PropConfig::calibrated())
            .run_multi_parallel(graph, balance, RUNS, SEED, ParallelPolicy::Threads(2))
            .unwrap(),
        "fm" => FmBucket::default()
            .run_multi_parallel(graph, balance, RUNS, SEED, ParallelPolicy::Threads(2))
            .unwrap(),
        "ml" => Multilevel::standard(MultilevelConfig {
            seed: SEED,
            ..MultilevelConfig::default()
        })
        .run_multi_parallel(graph, balance, RUNS, SEED, ParallelPolicy::Threads(2))
        .unwrap(),
        other => panic!("unexpected engine {other}"),
    };
    let hash = engine::assignment_hash(result.partition.sides());
    (result.cut_cost, result.run_cuts, hash)
}

fn submit_via_daemon(
    addr: std::net::SocketAddr,
    engine_name: &str,
    payload: &str,
) -> (f64, Vec<f64>, u64) {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .submit(&SubmitRequest {
            engine: engine_name.into(),
            runs: RUNS,
            seed: SEED,
            payload: payload.into(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{engine_name}: {}",
        response.render()
    );
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("completed"),
        "{engine_name}: {}",
        response.render()
    );
    let cut = response.get("cut").and_then(Json::as_f64).unwrap();
    let run_cuts: Vec<f64> = response
        .get("run_cuts")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|c| c.as_f64().unwrap())
        .collect();
    let hash = response
        .get("assignment_hash")
        .and_then(Json::as_str)
        .and_then(prop_serve::json::parse_hex64)
        .unwrap();
    (cut, run_cuts, hash)
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let handle = server::start(&ServerConfig {
        workers: 2,
        queue_cap: 32,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Four concurrent clients: prop and fm on two different circuits, ml
    // on one of them — every (engine, circuit) checked against the
    // library run on this thread.
    let jobs: Vec<(&str, u64)> = vec![("prop", 1), ("fm", 1), ("prop", 2), ("ml", 1)];
    let clients: Vec<_> = jobs
        .iter()
        .map(|&(engine_name, graph_seed)| {
            let payload = format::write_hgr(&test_graph(graph_seed));
            thread::spawn(move || submit_via_daemon(addr, engine_name, &payload))
        })
        .collect();
    let served: Vec<(f64, Vec<f64>, u64)> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();

    for (&(engine_name, graph_seed), got) in jobs.iter().zip(&served) {
        let graph = test_graph(graph_seed);
        let expect = direct_expectation(engine_name, &graph);
        assert_eq!(
            got, &expect,
            "daemon diverged from direct run for {engine_name} on circuit seed {graph_seed}"
        );
    }

    // The hgr round-trip itself must not perturb the circuit either:
    // same payload, same expectation.
    let reparsed = format::parse_hgr(&format::write_hgr(&test_graph(1))).unwrap();
    assert_eq!(
        direct_expectation("prop", &reparsed),
        direct_expectation("prop", &test_graph(1))
    );

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let jobs_stats = stats.get("stats").and_then(|s| s.get("jobs")).unwrap();
    assert_eq!(
        jobs_stats.get("completed").and_then(Json::as_u64),
        Some(4),
        "{}",
        stats.render()
    );
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn repeat_submissions_are_deterministic_across_connections() {
    let handle = server::start(&ServerConfig {
        workers: 2,
        queue_cap: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let payload = format::write_hgr(&test_graph(3));
    let first = submit_via_daemon(handle.addr(), "prop", &payload);
    let second = submit_via_daemon(handle.addr(), "prop", &payload);
    assert_eq!(first, second);
    assert_eq!(first.1.len(), RUNS, "seed trajectory covers every run");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.join();
}
