//! Round-trip equivalence between the `prop-serve` daemon and direct
//! library calls.
//!
//! The daemon's whole value proposition is that putting a socket in
//! front of the engines changes *nothing*: for each engine, the cut,
//! the per-run seed trajectory, and the full node→side assignment
//! (compared by FNV-1a hash) fetched over the wire must be bit-identical
//! to `run_multi_parallel` on the same inputs — including across
//! concurrent clients hammering one daemon.

use prop_core::{BalanceConstraint, ParallelPolicy, Partitioner, Prop, PropConfig};
use prop_fm::FmBucket;
use prop_multilevel::{Multilevel, MultilevelConfig};
use prop_netlist::format;
use prop_netlist::generate::{generate, GeneratorConfig};
use prop_serve::{engine, server, Client, Json, ServerConfig, SubmitRequest};
use std::thread;

const RUNS: usize = 3;
const SEED: u64 = 41;

fn test_graph(seed: u64) -> prop_netlist::Hypergraph {
    generate(&GeneratorConfig::new(80, 92, 300).with_seed(seed)).unwrap()
}

/// The direct-library expectation for one engine: (cut, run_cuts,
/// assignment hash).
fn direct_expectation(engine_name: &str, graph: &prop_netlist::Hypergraph) -> (f64, Vec<f64>, u64) {
    let balance = BalanceConstraint::weighted(0.45, 0.55, graph).unwrap();
    let result = match engine_name {
        "prop" => Prop::new(PropConfig::calibrated())
            .run_multi_parallel(graph, balance, RUNS, SEED, ParallelPolicy::Threads(2))
            .unwrap(),
        "fm" => FmBucket::default()
            .run_multi_parallel(graph, balance, RUNS, SEED, ParallelPolicy::Threads(2))
            .unwrap(),
        "ml" => Multilevel::standard(MultilevelConfig {
            seed: SEED,
            ..MultilevelConfig::default()
        })
        .run_multi_parallel(graph, balance, RUNS, SEED, ParallelPolicy::Threads(2))
        .unwrap(),
        other => panic!("unexpected engine {other}"),
    };
    let hash = engine::assignment_hash(result.partition.sides());
    (result.cut_cost, result.run_cuts, hash)
}

fn submit_via_daemon(
    addr: std::net::SocketAddr,
    engine_name: &str,
    payload: &str,
) -> (f64, Vec<f64>, u64) {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .submit(&SubmitRequest {
            engine: engine_name.into(),
            runs: RUNS,
            seed: SEED,
            payload: payload.into(),
            wait: true,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{engine_name}: {}",
        response.render()
    );
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("completed"),
        "{engine_name}: {}",
        response.render()
    );
    let cut = response.get("cut").and_then(Json::as_f64).unwrap();
    let run_cuts: Vec<f64> = response
        .get("run_cuts")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|c| c.as_f64().unwrap())
        .collect();
    let hash = response
        .get("assignment_hash")
        .and_then(Json::as_str)
        .and_then(prop_serve::json::parse_hex64)
        .unwrap();
    (cut, run_cuts, hash)
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let handle = server::start(&ServerConfig {
        workers: 2,
        queue_cap: 32,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Four concurrent clients: prop and fm on two different circuits, ml
    // on one of them — every (engine, circuit) checked against the
    // library run on this thread.
    let jobs: Vec<(&str, u64)> = vec![("prop", 1), ("fm", 1), ("prop", 2), ("ml", 1)];
    let clients: Vec<_> = jobs
        .iter()
        .map(|&(engine_name, graph_seed)| {
            let payload = format::write_hgr(&test_graph(graph_seed));
            thread::spawn(move || submit_via_daemon(addr, engine_name, &payload))
        })
        .collect();
    let served: Vec<(f64, Vec<f64>, u64)> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();

    for (&(engine_name, graph_seed), got) in jobs.iter().zip(&served) {
        let graph = test_graph(graph_seed);
        let expect = direct_expectation(engine_name, &graph);
        assert_eq!(
            got, &expect,
            "daemon diverged from direct run for {engine_name} on circuit seed {graph_seed}"
        );
    }

    // The hgr round-trip itself must not perturb the circuit either:
    // same payload, same expectation.
    let reparsed = format::parse_hgr(&format::write_hgr(&test_graph(1))).unwrap();
    assert_eq!(
        direct_expectation("prop", &reparsed),
        direct_expectation("prop", &test_graph(1))
    );

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let jobs_stats = stats.get("stats").and_then(|s| s.get("jobs")).unwrap();
    assert_eq!(
        jobs_stats.get("completed").and_then(Json::as_u64),
        Some(4),
        "{}",
        stats.render()
    );
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn repeat_submissions_are_deterministic_across_connections() {
    let handle = server::start(&ServerConfig {
        workers: 2,
        queue_cap: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let payload = format::write_hgr(&test_graph(3));
    let first = submit_via_daemon(handle.addr(), "prop", &payload);
    let second = submit_via_daemon(handle.addr(), "prop", &payload);
    assert_eq!(first, second);
    assert_eq!(first.1.len(), RUNS, "seed trajectory covers every run");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

/// Submits a k-way job (optionally budgeted) and returns the wire-side
/// summary: (cut, connectivity, k, part_weights, assignment hash).
fn submit_kway_via_daemon(
    addr: std::net::SocketAddr,
    engine_name: &str,
    payload: &str,
    k: usize,
    budgets: Vec<f64>,
) -> (f64, f64, u64, Vec<f64>, u64) {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .submit(&SubmitRequest {
            engine: engine_name.into(),
            runs: RUNS,
            seed: SEED,
            payload: payload.into(),
            wait: true,
            k,
            budgets,
            ..SubmitRequest::default()
        })
        .unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{engine_name}: {}",
        response.render()
    );
    let cut = response.get("cut").and_then(Json::as_f64).unwrap();
    let connectivity = response.get("connectivity").and_then(Json::as_f64).unwrap();
    let k_out = response.get("k").and_then(Json::as_u64).unwrap();
    let part_weights: Vec<f64> = response
        .get("part_weights")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|w| w.as_f64().unwrap())
        .collect();
    let hash = response
        .get("assignment_hash")
        .and_then(Json::as_str)
        .and_then(prop_serve::json::parse_hex64)
        .unwrap();
    (cut, connectivity, k_out, part_weights, hash)
}

#[test]
fn kway_submissions_are_bit_identical_to_the_direct_driver() {
    let handle = server::start(&ServerConfig {
        workers: 2,
        queue_cap: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let graph = test_graph(5);
    let payload = format::write_hgr(&graph);
    let total: f64 = graph.nodes().map(|v| graph.node_weight(v)).sum();
    let budgets = vec![total * 0.4, total * 0.25, total * 0.25, total * 0.2];

    for (engine_name, budget_set) in [("ml", Vec::new()), ("prop", budgets.clone())] {
        let served =
            submit_kway_via_daemon(handle.addr(), engine_name, &payload, 4, budget_set.clone());
        let kind = engine::EngineKind::from_name(engine_name).unwrap();
        let token = prop_core::CancelToken::new();
        let report = engine::execute_kway(
            kind,
            &graph,
            4,
            (!budget_set.is_empty()).then(|| budget_set.clone()),
            0.45,
            0.55,
            RUNS,
            SEED,
            &token,
            MultilevelConfig::default(),
        )
        .unwrap();
        let expect = (
            report.partition.cut_cost(&graph),
            report.partition.connectivity_cost(&graph),
            4u64,
            report.partition.part_weights().to_vec(),
            engine::kway_assignment_hash(report.partition.assignment()),
        );
        assert_eq!(
            served, expect,
            "daemon k-way diverged from the direct driver for {engine_name}"
        );
        if !budget_set.is_empty() {
            for (w, b) in served.3.iter().zip(&budget_set) {
                assert!(w <= b, "served part weight {w} exceeds budget {b}");
            }
        }
    }

    // A `k=2` uniform submission takes the classic bipartition path; the
    // k-way hash function is bit-compatible, so a direct 2-way run must
    // produce the same assignment hash the daemon reports.
    let served2 = submit_via_daemon(handle.addr(), "prop", &payload);
    assert_eq!(served2, direct_expectation("prop", &graph));

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.join();
}
