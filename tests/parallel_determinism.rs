//! The parallel multi-start harness must be bit-identical to the
//! sequential one, and the PROP engine's per-pass behaviour is pinned by
//! a golden trace so hot-path refactors cannot silently change the
//! algorithm.

use prop_suite::core::{
    BalanceConstraint, ParallelPolicy, Partitioner, Prop, PropConfig, Side,
};
use prop_suite::fm::FmBucket;
use prop_suite::netlist::generate::{generate, GeneratorConfig};
use prop_suite::netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn circuits() -> Vec<Hypergraph> {
    vec![
        generate(&GeneratorConfig::new(220, 240, 820).with_seed(11)).unwrap(),
        generate(&GeneratorConfig::new(150, 170, 560).with_seed(47)).unwrap(),
    ]
}

fn assert_bit_identical(partitioner: &dyn Partitioner, graph: &Hypergraph) {
    let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
    let sequential = partitioner.run_multi(graph, balance, 6, 3).unwrap();
    let parallel = partitioner
        .run_multi_parallel(graph, balance, 6, 3, ParallelPolicy::Threads(4))
        .unwrap();
    assert_eq!(parallel.cut_cost, sequential.cut_cost, "{}", partitioner.name());
    assert_eq!(parallel.run_cuts, sequential.run_cuts, "{}", partitioner.name());
    assert_eq!(
        parallel.partition, sequential.partition,
        "{} winning partition",
        partitioner.name()
    );
    assert_eq!(parallel.total_passes, sequential.total_passes, "{}", partitioner.name());
}

#[test]
fn parallel_multistart_matches_sequential_for_prop_and_fm() {
    for graph in &circuits() {
        assert_bit_identical(&Prop::new(PropConfig::calibrated()), graph);
        assert_bit_identical(&FmBucket::default(), graph);
    }
}

/// Golden regression trace of the PROP engine: a fixed circuit, seed, and
/// configuration must reproduce the exact per-pass move counts and
/// committed gains. Regenerate the constants with
/// `cargo test golden_trace -- --nocapture` after an *intentional*
/// algorithmic change (the printed `observed:` line is the new golden).
#[test]
fn golden_trace_is_stable() {
    let graph = generate(&GeneratorConfig::new(120, 130, 440).with_seed(9)).unwrap();
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let prop = Prop::new(PropConfig::calibrated());
    let mut rng = StdRng::seed_from_u64(17);
    let mut partition = prop_suite::core::Bipartition::random(graph.num_nodes(), &mut rng);
    let (stats, traces) = prop.improve_traced(&graph, &mut partition, balance);

    let observed: Vec<(usize, usize, f64, f64)> = traces
        .iter()
        .map(|t| (t.tentative_moves, t.committed_moves, t.committed_gain, t.max_drawdown))
        .collect();
    println!("observed: cut={} passes={} traces={observed:?}", stats.cut_cost, stats.passes);

    let golden: Vec<(usize, usize, f64, f64)> = vec![
        (120, 60, 81.0, 0.0),
        (120, 2, 4.0, 0.0),
        (120, 30, 6.0, -7.0),
        (120, 0, 0.0, 0.0),
    ];
    assert_eq!(stats.cut_cost, 7.0);
    assert_eq!(observed, golden);
    assert_eq!(partition.count(Side::A) + partition.count(Side::B), 120);
}
