//! The parallel multi-start harness must be bit-identical to the
//! sequential one, and the PROP engine's per-pass behaviour is pinned by
//! a golden trace so hot-path refactors cannot silently change the
//! algorithm.

use prop_suite::core::{
    BalanceConstraint, ParallelPolicy, PartitionError, Partitioner, Prop, PropConfig,
    RunBudget, Side,
};
use prop_suite::fm::FmBucket;
use prop_suite::netlist::generate::{generate, GeneratorConfig};
use prop_suite::netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn circuits() -> Vec<Hypergraph> {
    vec![
        generate(&GeneratorConfig::new(220, 240, 820).with_seed(11)).unwrap(),
        generate(&GeneratorConfig::new(150, 170, 560).with_seed(47)).unwrap(),
    ]
}

fn assert_bit_identical(partitioner: &dyn Partitioner, graph: &Hypergraph) {
    let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
    let sequential = partitioner.run_multi(graph, balance, 6, 3).unwrap();
    let parallel = partitioner
        .run_multi_parallel(graph, balance, 6, 3, ParallelPolicy::Threads(4))
        .unwrap();
    assert_eq!(parallel.cut_cost, sequential.cut_cost, "{}", partitioner.name());
    assert_eq!(parallel.run_cuts, sequential.run_cuts, "{}", partitioner.name());
    assert_eq!(
        parallel.partition, sequential.partition,
        "{} winning partition",
        partitioner.name()
    );
    assert_eq!(parallel.total_passes, sequential.total_passes, "{}", partitioner.name());
}

#[test]
fn parallel_multistart_matches_sequential_for_prop_and_fm() {
    for graph in &circuits() {
        assert_bit_identical(&Prop::new(PropConfig::calibrated()), graph);
        assert_bit_identical(&FmBucket::default(), graph);
    }
}

/// Golden regression trace of the PROP engine: a fixed circuit, seed, and
/// configuration must reproduce the exact per-pass move counts and
/// committed gains. Regenerate the constants with
/// `cargo test golden_trace -- --nocapture` after an *intentional*
/// algorithmic change (the printed `observed:` line is the new golden).
#[test]
fn golden_trace_is_stable() {
    let graph = generate(&GeneratorConfig::new(120, 130, 440).with_seed(9)).unwrap();
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let prop = Prop::new(PropConfig::calibrated());
    let mut rng = StdRng::seed_from_u64(17);
    let mut partition = prop_suite::core::Bipartition::random(graph.num_nodes(), &mut rng);
    let (stats, traces) = prop.improve_traced(&graph, &mut partition, balance);

    let observed: Vec<(usize, usize, f64, f64)> = traces
        .iter()
        .map(|t| (t.tentative_moves, t.committed_moves, t.committed_gain, t.max_drawdown))
        .collect();
    println!("observed: cut={} passes={} traces={observed:?}", stats.cut_cost, stats.passes);

    let golden: Vec<(usize, usize, f64, f64)> = vec![
        (120, 60, 81.0, 0.0),
        (120, 2, 4.0, 0.0),
        (120, 30, 6.0, -7.0),
        (120, 0, 0.0, 0.0),
    ];
    assert_eq!(stats.cut_cost, 7.0);
    assert_eq!(observed, golden);
    assert_eq!(partition.count(Side::A) + partition.count(Side::B), 120);
}

#[test]
fn run_budget_zero_runs_is_rejected() {
    let graph = generate(&GeneratorConfig::new(60, 70, 230).with_seed(2)).unwrap();
    let balance = BalanceConstraint::bisection(60);
    let err = RunBudget::new(0)
        .execute(&Prop::default(), &graph, balance)
        .unwrap_err();
    assert!(matches!(err, PartitionError::InvalidConfig { .. }));
}

/// A best-of-1 budget is exactly one seeded run, whatever the thread
/// policy, and `run_seeded` agrees with it.
#[test]
fn run_budget_single_run_matches_run_seeded() {
    let graph = generate(&GeneratorConfig::new(60, 70, 230).with_seed(2)).unwrap();
    let balance = BalanceConstraint::bisection(60);
    let prop = Prop::new(PropConfig::calibrated());
    let direct = prop.run_seeded(&graph, balance, 31).unwrap();
    for policy in [
        ParallelPolicy::Sequential,
        ParallelPolicy::Threads(0),
        ParallelPolicy::Threads(8),
        ParallelPolicy::Auto,
    ] {
        let budgeted = RunBudget::new(1)
            .with_seed(31)
            .with_policy(policy)
            .execute(&prop, &graph, balance)
            .unwrap();
        assert_eq!(budgeted, direct, "{policy:?}");
        assert_eq!(budgeted.run_cuts.len(), 1);
    }
}

/// More workers than runs must neither deadlock nor change the outcome —
/// the excess workers find the run queue drained and exit.
#[test]
fn more_threads_than_runs_is_bit_identical() {
    let graph = generate(&GeneratorConfig::new(90, 100, 340).with_seed(6)).unwrap();
    let balance = BalanceConstraint::new(0.45, 0.55, 90).unwrap();
    let prop = Prop::new(PropConfig::calibrated());
    let sequential = prop.run_multi(&graph, balance, 3, 12).unwrap();
    for threads in [4, 16, 64] {
        let parallel = prop
            .run_multi_parallel(&graph, balance, 3, 12, ParallelPolicy::Threads(threads))
            .unwrap();
        assert_eq!(parallel, sequential, "threads={threads}");
    }
}

/// Installing an auditor must never change results: the audited engines
/// emit records but the algorithm is observation-only. Worker threads of
/// the parallel harness run unaudited (the slot is thread-local), so the
/// parallel result must equal the audited sequential one bit-for-bit.
#[cfg(feature = "debug-audit")]
#[test]
fn audited_budget_matches_unaudited_and_parallel() {
    use prop_suite::verify::{audited, OracleAuditor};

    let graph = generate(&GeneratorConfig::new(90, 100, 340).with_seed(6)).unwrap();
    let balance = BalanceConstraint::new(0.45, 0.55, 90).unwrap();
    let prop = Prop::new(PropConfig::calibrated());
    let budget = RunBudget::new(4).with_seed(3);

    let unaudited = budget.execute(&prop, &graph, balance).unwrap();
    let (auditor, stats) = OracleAuditor::new();
    let audited_result =
        audited(Box::new(auditor), || budget.execute(&prop, &graph, balance)).unwrap();
    assert_eq!(audited_result, unaudited);
    assert!(stats.borrow().passes > 0, "auditor saw no passes");

    let (auditor, _) = OracleAuditor::new();
    let parallel = audited(Box::new(auditor), || {
        budget
            .with_policy(ParallelPolicy::Threads(4))
            .execute(&prop, &graph, balance)
    })
    .unwrap();
    assert_eq!(parallel, unaudited);
}
