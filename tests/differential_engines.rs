//! Cross-engine differential equivalence.
//!
//! Three engine families are pinned against independent implementations:
//!
//! * **PROP vs PROP-oracle** — the incremental engine against
//!   `prop_verify::ReferenceProp`, a from-scratch mirror with no trees,
//!   no incremental cut state, and no epoch bookkeeping. The two must
//!   agree *bit-for-bit*: identical final partitions, identical per-run
//!   cuts, identical pass traces — across seeds, thread counts, and the
//!   `balance_probe_depth` knob.
//! * **FM-bucket vs FM-tree** — the two gain-container backends of the
//!   same FM pass. Their tie-breaking is LIFO-equivalent by construction
//!   (bucket head == max recency stamp), so on unit-cost circuits they
//!   must produce identical results; under `--features debug-audit` the
//!   recorded move sequences are compared move for move.
//! * **Everything vs the oracle auditor** — with `debug-audit` enabled,
//!   `OracleAuditor` rides inside full PROP/FM runs and re-derives every
//!   per-move invariant from scratch, panicking on the first drift.

use prop_suite::core::{
    cut_cost, BalanceConstraint, ParallelPolicy, Partitioner, Prop, PropConfig, RunBudget,
    SelectionBackend,
};
use prop_suite::fm::{FmBucket, FmTree};
use prop_suite::netlist::generate::{generate, GeneratorConfig};
use prop_suite::netlist::{Hypergraph, HypergraphBuilder};
use prop_suite::verify::ReferenceProp;

const SEEDS: [u64; 6] = [0, 1, 2, 17, 99, 12345];

fn circuit(seed: u64) -> Hypergraph {
    generate(&GeneratorConfig::new(72, 80, 270).with_seed(seed)).unwrap()
}

/// A clustered circuit with node weights spanning a factor of 8, for the
/// weighted-balance and probe-depth comparisons.
fn weighted_circuit(seed: u64) -> Hypergraph {
    let base = circuit(seed);
    let mut b = HypergraphBuilder::new(base.num_nodes());
    for net in base.nets() {
        b.add_net(1.0, base.pins_of(net).iter().map(|v| v.index()))
            .unwrap();
    }
    let weights: Vec<f64> = (0..base.num_nodes())
        .map(|v| [0.5, 1.0, 2.0, 4.0][(v * 7 + seed as usize) % 4])
        .collect();
    b.set_node_weights(weights).unwrap();
    b.build().unwrap()
}

#[test]
fn prop_matches_reference_across_seeds() {
    let balance = BalanceConstraint::bisection(72);
    let fast = Prop::new(PropConfig::default());
    let slow = ReferenceProp::new(PropConfig::default());
    for seed in SEEDS {
        let g = circuit(seed);
        let a = fast.run_seeded(&g, balance, seed).unwrap();
        let b = slow.run_seeded(&g, balance, seed).unwrap();
        assert_eq!(a, b, "seed {seed}: engine and reference diverged");
        assert_eq!(a.cut_cost, cut_cost(&g, &a.partition), "seed {seed}");
    }
}

#[test]
fn prop_matches_reference_with_calibrated_profile_and_ratio_balance() {
    let balance = BalanceConstraint::new(0.45, 0.55, 72).unwrap();
    let fast = Prop::new(PropConfig::calibrated());
    let slow = ReferenceProp::new(PropConfig::calibrated());
    for seed in SEEDS {
        let g = circuit(seed ^ 0xbeef);
        let a = fast.run_seeded(&g, balance, seed).unwrap();
        let b = slow.run_seeded(&g, balance, seed).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn prop_traces_match_reference_pass_for_pass() {
    let balance = BalanceConstraint::bisection(72);
    let fast = Prop::new(PropConfig::default());
    let slow = ReferenceProp::new(PropConfig::default());
    for seed in SEEDS.into_iter().take(4) {
        let g = circuit(seed);
        // Same seeded initial partition for both, via the shared harness.
        let mut pa = fast.run_seeded(&g, balance, seed).unwrap().partition;
        let mut pb = pa.clone();
        // Drive both from the *result* partition too (a local minimum):
        // traces must both be a single non-improving pass.
        let (sa, ta) = fast.improve_traced(&g, &mut pa, balance);
        let (sb, tb) = slow.improve_traced(&g, &mut pb, balance);
        assert_eq!(ta, tb, "seed {seed}: pass traces diverged");
        assert_eq!(sa.passes, sb.passes, "seed {seed}");
        assert_eq!(sa.cut_cost, sb.cut_cost, "seed {seed}");
        assert_eq!(pa, pb, "seed {seed}");
    }
}

#[test]
fn prop_matches_reference_across_thread_counts() {
    let balance = BalanceConstraint::bisection(72);
    let g = circuit(7);
    let fast = Prop::new(PropConfig::default());
    let slow = ReferenceProp::new(PropConfig::default());
    let sequential = RunBudget::new(6).with_seed(3).execute(&slow, &g, balance).unwrap();
    for threads in [1, 2, 3, 8] {
        let budget = RunBudget::new(6).with_seed(3).with_threads(threads);
        let a = budget.execute(&fast, &g, balance).unwrap();
        assert_eq!(
            a, sequential,
            "{threads}-thread engine vs sequential reference"
        );
        let b = budget.execute(&slow, &g, balance).unwrap();
        assert_eq!(b, sequential, "{threads}-thread reference vs sequential");
    }
    let auto = RunBudget::new(6)
        .with_seed(3)
        .with_policy(ParallelPolicy::Auto)
        .execute(&fast, &g, balance)
        .unwrap();
    assert_eq!(auto, sequential);
}

#[test]
fn prop_matches_reference_under_probe_depth_knob() {
    for seed in SEEDS.into_iter().take(5) {
        let g = weighted_circuit(seed);
        let balance = BalanceConstraint::weighted(0.4, 0.6, &g).unwrap();
        for depth in [None, Some(1), Some(4), Some(1000)] {
            let mut cfg = PropConfig::calibrated();
            cfg.balance_probe_depth = depth;
            let a = Prop::new(cfg.clone()).run_seeded(&g, balance, seed).unwrap();
            let b = ReferenceProp::new(cfg).run_seeded(&g, balance, seed).unwrap();
            assert_eq!(a, b, "seed {seed}, probe depth {depth:?}");
            assert!(prop_suite::verify::oracle::naive_is_feasible(
                &g,
                &a.partition,
                balance
            ));
        }
    }
}

/// Every selection backend must produce the identical `RunResult` — and
/// all of them must equal the container-free reference. Selection keys
/// are unique (gain, recency stamp, node id), so any ordered container
/// picks the same node every move; this pins that property end to end,
/// on both unit-weight (count-balance) and weighted (probe-scan)
/// circuits.
#[test]
fn selection_backends_match_each_other_and_the_reference() {
    const BACKENDS: [SelectionBackend; 3] = [
        SelectionBackend::AvlTree,
        SelectionBackend::LazyHeap,
        SelectionBackend::IndexedHeap,
    ];
    for seed in SEEDS.into_iter().take(4) {
        // Unit weights: count-based balance, peek-only selection.
        let g = circuit(seed);
        let balance = BalanceConstraint::bisection(72);
        let reference = ReferenceProp::new(PropConfig::default())
            .run_seeded(&g, balance, seed)
            .unwrap();
        for backend in BACKENDS {
            let mut cfg = PropConfig::default();
            cfg.selection = backend;
            let a = Prop::new(cfg).run_seeded(&g, balance, seed).unwrap();
            assert_eq!(a, reference, "seed {seed}, backend {backend:?}");
        }
        // Node weights: the descending feasibility probe, bounded and not.
        let g = weighted_circuit(seed);
        let balance = BalanceConstraint::weighted(0.4, 0.6, &g).unwrap();
        for depth in [None, Some(2)] {
            let mut cfg = PropConfig::calibrated();
            cfg.balance_probe_depth = depth;
            let reference = ReferenceProp::new(cfg.clone())
                .run_seeded(&g, balance, seed)
                .unwrap();
            for backend in BACKENDS {
                let mut cfg = cfg.clone();
                cfg.selection = backend;
                let a = Prop::new(cfg).run_seeded(&g, balance, seed).unwrap();
                assert_eq!(
                    a, reference,
                    "seed {seed}, backend {backend:?}, probe depth {depth:?}"
                );
            }
        }
    }
}

#[test]
fn fm_bucket_and_tree_agree_bit_for_bit_on_unit_costs() {
    let balance = BalanceConstraint::bisection(72);
    for seed in SEEDS {
        let g = circuit(seed);
        let rb = FmBucket::default().run_multi(&g, balance, 3, seed).unwrap();
        let rt = FmTree::default().run_multi(&g, balance, 3, seed).unwrap();
        assert_eq!(
            rb, rt,
            "seed {seed}: bucket and tree FM diverged on unit costs"
        );
        assert_eq!(rb.cut_cost, cut_cost(&g, &rb.partition));
    }
}

/// The audited differential tests: auditors hook into live engines, so
/// they exist only when the emission sites are compiled in.
#[cfg(feature = "debug-audit")]
mod audited {
    use super::*;
    use prop_suite::core::Bipartition;
    use prop_suite::verify::{audited, OracleAuditor, PassLog, RecordingAuditor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs `method.improve` from a seeded random partition with a
    /// recording auditor installed, returning the pass logs.
    fn record_run(method: &dyn Partitioner, g: &Hypergraph, seed: u64) -> Vec<PassLog> {
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let (rec, log) = RecordingAuditor::new();
        audited(Box::new(rec), || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = Bipartition::random(g.num_nodes(), &mut rng);
            method.improve(g, &mut p, balance);
        });
        let passes = log.borrow().clone();
        passes
    }

    #[test]
    fn fm_bucket_and_tree_make_identical_move_sequences() {
        for seed in SEEDS {
            let g = circuit(seed);
            let bucket = record_run(&FmBucket::default(), &g, seed);
            let tree = record_run(&FmTree::default(), &g, seed);
            assert_eq!(bucket.len(), tree.len(), "seed {seed}: pass counts");
            for (pass, (pb, pt)) in bucket.iter().zip(&tree).enumerate() {
                assert_eq!(pb.engine, "FM-bucket");
                assert_eq!(pt.engine, "FM-tree");
                assert_eq!(
                    pb.moves, pt.moves,
                    "seed {seed}, pass {pass}: move sequences diverged"
                );
                assert_eq!(pb.immediate_gains, pt.immediate_gains, "seed {seed}, pass {pass}");
                assert_eq!(pb.committed_moves, pt.committed_moves, "seed {seed}, pass {pass}");
                assert_eq!(pb.end_cut, pt.end_cut, "seed {seed}, pass {pass}");
            }
        }
    }

    #[test]
    fn recorded_prop_passes_match_reference_records() {
        let balance = BalanceConstraint::bisection(72);
        for seed in SEEDS.into_iter().take(4) {
            let g = circuit(seed);
            let (rec, log) = RecordingAuditor::new();
            let engine_result = audited(Box::new(rec), || {
                Prop::new(PropConfig::default()).run_seeded(&g, balance, seed).unwrap()
            });
            let mut p = {
                // Reproduce the harness's seeded initial partition by
                // rerunning the reference through the same harness.
                let slow = ReferenceProp::new(PropConfig::default());
                let r = slow.run_seeded(&g, balance, seed).unwrap();
                assert_eq!(engine_result.partition, r.partition, "seed {seed}");
                r.partition
            };
            // Compare the audited engine log against the reference's own
            // recorded re-execution from the common local minimum.
            let slow = ReferenceProp::new(PropConfig::default());
            let (_, _, records) = slow.improve_recorded(&g, &mut p, balance);
            let engine_passes = log.borrow();
            // The audited engine log covers the full run (from the random
            // start); its final pass and the reference's only pass are both
            // non-improving passes from the same minimum.
            let last = engine_passes.last().expect("at least one pass");
            let ref_last = records.last().expect("at least one pass");
            assert_eq!(last.engine, "PROP");
            assert_eq!(last.committed_moves, 0, "seed {seed}: final pass must not improve");
            assert_eq!(ref_last.committed_moves, 0, "seed {seed}");
            assert_eq!(
                last.refinement_gains.as_deref(),
                Some(ref_last.refinement_gains.as_slice()),
                "seed {seed}: refinement gain tables diverged bit-for-bit"
            );
            assert_eq!(
                last.refinement_probabilities.as_deref(),
                Some(ref_last.refinement_probabilities.as_slice()),
                "seed {seed}"
            );
            assert_eq!(last.moves, ref_last.moves, "seed {seed}: tentative moves diverged");
            assert_eq!(last.immediate_gains, ref_last.immediate_gains, "seed {seed}");
        }
    }

    #[test]
    fn oracle_auditor_accepts_full_prop_runs() {
        for seed in SEEDS.into_iter().take(3) {
            let g = circuit(seed);
            let balance = BalanceConstraint::bisection(g.num_nodes());
            let (auditor, stats) = OracleAuditor::new();
            audited(Box::new(auditor), || {
                Prop::new(PropConfig::default()).run_seeded(&g, balance, seed).unwrap();
            });
            let s = *stats.borrow();
            assert!(s.passes >= 1, "seed {seed}: no passes audited");
            assert_eq!(s.passes, s.commits, "seed {seed}");
            assert_eq!(s.passes, s.refinements, "seed {seed}");
            assert!(s.moves > 0, "seed {seed}: no moves audited");
        }
    }

    #[test]
    fn oracle_auditor_accepts_full_fm_runs() {
        for seed in SEEDS.into_iter().take(3) {
            let g = circuit(seed);
            let balance = BalanceConstraint::bisection(g.num_nodes());
            for method in [
                Box::new(FmBucket::default()) as Box<dyn Partitioner>,
                Box::new(FmTree::default()),
            ] {
                let (auditor, stats) = OracleAuditor::new();
                audited(Box::new(auditor), || {
                    method.run_seeded(&g, balance, seed).unwrap();
                });
                let s = *stats.borrow();
                assert!(s.passes >= 1, "seed {seed} {}", method.name());
                assert_eq!(s.refinements, 0, "FM has no refinement phase");
                assert!(s.moves > 0, "seed {seed} {}", method.name());
            }
        }
    }

    #[test]
    fn oracle_auditor_accepts_weighted_probe_depth_runs() {
        let g = weighted_circuit(5);
        let balance = BalanceConstraint::weighted(0.4, 0.6, &g).unwrap();
        let mut cfg = PropConfig::calibrated();
        cfg.balance_probe_depth = Some(4);
        let (auditor, stats) = OracleAuditor::new();
        audited(Box::new(auditor), || {
            Prop::new(cfg).run_seeded(&g, balance, 11).unwrap();
        });
        assert!(stats.borrow().moves > 0);
    }

    #[test]
    fn audited_parallel_runs_stay_deterministic() {
        // Workers run unaudited (the auditor is thread-local), but the
        // result must still be bit-identical to the audited sequential run.
        let g = circuit(21);
        let balance = BalanceConstraint::bisection(g.num_nodes());
        let prop = Prop::new(PropConfig::default());
        let (auditor, _) = OracleAuditor::new();
        let sequential = audited(Box::new(auditor), || {
            RunBudget::new(4).with_seed(9).execute(&prop, &g, balance).unwrap()
        });
        let parallel = RunBudget::new(4)
            .with_seed(9)
            .with_threads(4)
            .execute(&prop, &g, balance)
            .unwrap();
        assert_eq!(sequential, parallel);
    }
}
