//! Bit-identity of coordinator-sharded batch sweeps against direct
//! sequential library calls.
//!
//! The cluster subsystem's core claim: a `batch` sweep sharded across
//! any number of workers — including a pool with a dead member that
//! forces mid-batch rescheduling — produces exactly the result of a
//! local sequential `run_multi` sweep: same winning cut, same per-run
//! seed trajectory, same node→side assignment hash, per group and
//! overall. These tests run real daemons (workers + coordinator) on
//! loopback and compare against the library run in-process.

use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_fm::FmBucket;
use prop_netlist::format;
use prop_netlist::generate::{generate, GeneratorConfig};
use prop_serve::{
    engine, server, BatchRequest, Client, ClusterConfig, Json, ServerConfig, UploadRequest,
};
use std::time::Duration;

const RUNS: usize = 4;
const SEED: u64 = 41;

fn test_graph() -> prop_netlist::Hypergraph {
    generate(&GeneratorConfig::new(80, 92, 300).with_seed(5)).unwrap()
}

/// The sequential-library expectation for one sweep group.
fn direct_group(engine_name: &str, graph: &prop_netlist::Hypergraph) -> (f64, Vec<f64>, u64) {
    let balance = BalanceConstraint::weighted(0.45, 0.55, graph).unwrap();
    let result = match engine_name {
        "prop" => Prop::new(PropConfig::calibrated())
            .run_multi(graph, balance, RUNS, SEED)
            .unwrap(),
        "fm" => FmBucket::default()
            .run_multi(graph, balance, RUNS, SEED)
            .unwrap(),
        other => panic!("unexpected engine {other}"),
    };
    let hash = engine::assignment_hash(result.partition.sides());
    (result.cut_cost, result.run_cuts, hash)
}

struct Cluster {
    coordinator: server::ServerHandle,
    workers: Vec<server::ServerHandle>,
    base: std::path::PathBuf,
}

/// Spawns `real_workers` worker daemons plus a coordinator fronting
/// them (and any `extra_addrs`, e.g. dead ports), and uploads the test
/// circuit as `rt`.
fn start_cluster(tag: &str, real_workers: usize, extra_addrs: Vec<String>) -> Cluster {
    let base = std::env::temp_dir().join(format!(
        "prop-cluster-roundtrip-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&base).ok();
    let workers: Vec<_> = (0..real_workers)
        .map(|w| {
            server::start(&ServerConfig {
                workers: 1,
                queue_cap: 32,
                store_dir: Some(base.join(format!("w{w}")).to_string_lossy().into_owned()),
                ..ServerConfig::default()
            })
            .unwrap()
        })
        .collect();
    let mut addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    addrs.extend(extra_addrs);
    let coordinator = server::start(&ServerConfig {
        workers: 1,
        queue_cap: 32,
        store_dir: Some(base.join("coord").to_string_lossy().into_owned()),
        cluster: Some(ClusterConfig {
            workers: addrs,
            heartbeat_ms: 25,
            heartbeat_timeout_ms: 100,
            max_retries: 10,
            backoff_ms: 20,
        }),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(coordinator.addr()).unwrap();
    client
        .upload(&UploadRequest {
            circuit: "rt".into(),
            fmt: "hgr".into(),
            payload: Some(format::write_hgr(&test_graph()).into_bytes()),
            path: None,
        })
        .unwrap();
    Cluster {
        coordinator,
        workers,
        base,
    }
}

impl Cluster {
    fn client(&self) -> Client {
        Client::connect(self.coordinator.addr()).unwrap()
    }

    fn stop(self) {
        self.client().shutdown().unwrap();
        self.coordinator.join();
        for w in self.workers {
            Client::connect(w.addr()).unwrap().shutdown().unwrap();
            w.join();
        }
        std::fs::remove_dir_all(&self.base).ok();
    }
}

fn sweep_spec() -> BatchRequest {
    BatchRequest {
        circuit_id: "rt".into(),
        engines: vec!["prop".into(), "fm".into()],
        eps: vec![(0.45, 0.55)],
        runs: RUNS,
        seed: SEED,
        chunk: 2, // two chunks per group — real sharding even at 2 workers
        ..BatchRequest::default()
    }
}

/// Runs the sweep on the cluster and returns the terminal `done` event.
fn run_batch(cluster: &Cluster) -> Json {
    let mut client = cluster.client();
    let resp = client.batch(&sweep_spec()).unwrap();
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        resp.render()
    );
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    let done = client.watch(job, |_| {}).unwrap();
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("completed"),
        "{}",
        done.render()
    );
    done
}

/// Extracts (engine, cut, run_cuts, assignment hash) per sweep group.
fn group_results(done: &Json) -> Vec<(String, f64, Vec<f64>, u64)> {
    done.get("groups")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|g| {
            (
                g.get("engine").and_then(Json::as_str).unwrap().to_string(),
                g.get("cut").and_then(Json::as_f64).unwrap(),
                g.get("run_cuts")
                    .and_then(Json::as_arr)
                    .unwrap()
                    .iter()
                    .map(|c| c.as_f64().unwrap())
                    .collect(),
                g.get("assignment_hash")
                    .and_then(Json::as_str)
                    .and_then(prop_serve::json::parse_hex64)
                    .unwrap(),
            )
        })
        .collect()
}

/// The done event with run-specific fields (batch id, reschedule count)
/// stripped, so results from different cluster shapes compare equal.
fn normalized(done: &Json) -> String {
    let Json::Obj(fields) = done else {
        panic!("done event is not an object: {}", done.render())
    };
    Json::Obj(
        fields
            .iter()
            .filter(|(k, _)| k != "job" && k != "rescheduled")
            .cloned()
            .collect(),
    )
    .render()
}

fn assert_matches_direct(done: &Json) {
    let graph = test_graph();
    let groups = group_results(done);
    assert_eq!(groups.len(), 2, "{}", done.render());
    for (engine_name, cut, run_cuts, hash) in &groups {
        let (want_cut, want_cuts, want_hash) = direct_group(engine_name, &graph);
        assert_eq!(*cut, want_cut, "{engine_name} cut");
        assert_eq!(*run_cuts, want_cuts, "{engine_name} seed trajectory");
        assert_eq!(*hash, want_hash, "{engine_name} assignment hash");
        assert_eq!(run_cuts.len(), RUNS);
    }
    // The batch winner is one of the groups, carried verbatim.
    let cut = done.get("cut").and_then(Json::as_f64).unwrap();
    let hash = done
        .get("assignment_hash")
        .and_then(Json::as_str)
        .and_then(prop_serve::json::parse_hex64)
        .unwrap();
    let min = groups.iter().map(|g| g.1).fold(f64::INFINITY, f64::min);
    assert_eq!(cut, min, "winner carries the lowest group cut");
    assert!(groups.iter().any(|g| g.1 == cut && g.3 == hash));
}

#[test]
fn one_worker_matches_direct_sequential_sweep() {
    let cluster = start_cluster("one", 1, Vec::new());
    let done = run_batch(&cluster);
    assert_matches_direct(&done);
    assert_eq!(done.get("rescheduled").and_then(Json::as_u64), Some(0));
    cluster.stop();
}

#[test]
fn two_workers_are_bit_identical_to_one() {
    let one = start_cluster("pair-a", 1, Vec::new());
    let done_one = run_batch(&one);
    one.stop();

    let two = start_cluster("pair-b", 2, Vec::new());
    let done_two = run_batch(&two);
    // Both workers actually participated (or at least could): the
    // sweep expands to 4 sub-jobs over 2 dispatchers.
    assert_eq!(done_two.get("sub_jobs").and_then(Json::as_u64), Some(4));
    two.stop();

    assert_matches_direct(&done_two);
    assert_eq!(normalized(&done_one), normalized(&done_two));
}

#[test]
fn dead_worker_mid_pool_reschedules_without_changing_the_result() {
    // A listener bound then dropped: the port was just free, so dials
    // are refused — a worker that is lost from the very first dispatch.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let cluster = start_cluster("dead", 1, vec![dead_addr]);
    let done = run_batch(&cluster);
    assert_matches_direct(&done);

    // The dead worker is marked lost in the coordinator's stats and
    // completed nothing; the real worker carried the whole sweep.
    let mut client = cluster.client();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        let cluster_stats = stats.get("stats").and_then(|s| s.get("cluster")).unwrap();
        let workers = cluster_stats.get("workers").and_then(Json::as_arr).unwrap();
        assert_eq!(workers.len(), 2);
        if workers[1].get("alive").and_then(Json::as_bool) == Some(false) {
            assert_eq!(workers[1].get("completed").and_then(Json::as_u64), Some(0));
            assert_eq!(workers[0].get("completed").and_then(Json::as_u64), Some(4));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dead worker never marked lost: {}",
            stats.render()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    cluster.stop();
}

#[test]
fn cancel_fans_out_and_evict_is_refused_while_running() {
    let cluster = start_cluster("cancel", 1, Vec::new());
    let mut client = cluster.client();
    // A long sweep: many single-run sub-jobs so the batch is still in
    // flight when the cancel lands.
    let resp = client
        .batch(&BatchRequest {
            circuit_id: "rt".into(),
            engines: vec!["prop".into()],
            runs: 400,
            seed: SEED,
            chunk: 1,
            ..BatchRequest::default()
        })
        .unwrap();
    let job = resp.get("job").and_then(Json::as_u64).unwrap();

    // The referenced circuit is pinned for the batch's lifetime.
    let evict = client.evict("rt").unwrap();
    if evict.get("ok").and_then(Json::as_bool) == Some(false) {
        assert_eq!(
            evict.get("error").and_then(Json::as_str),
            Some("circuit_busy"),
            "{}",
            evict.render()
        );
    }

    let cancel = client.cancel(job).unwrap();
    assert_eq!(cancel.get("ok").and_then(Json::as_bool), Some(true));
    let done = client.wait(job).unwrap();
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        done.render()
    );

    // Terminal batch → pin released → evict now succeeds.
    let evict = client.evict("rt").unwrap();
    assert_eq!(
        evict.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        evict.render()
    );
    cluster.stop();
}
