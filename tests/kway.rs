//! End-to-end contract of the recursive k-way driver.
//!
//! Acceptance is oracle-first: every objective and every per-part weight
//! the driver reports must agree bit-for-bit with the from-scratch
//! `prop-verify` k-way oracles, budgets must hold exactly, results must
//! be bit-identical at every thread count, `k = 2` must collapse to the
//! plain bipartition path, and cancellation mid-recursion must still
//! yield a complete feasible assignment.

use prop_core::{
    partition_kway, partition_kway_cancellable, BalanceConstraint, CancelToken, KwayConfig,
    ParallelPolicy, PartitionError, Partitioner, Prop, PropConfig, RunStatus, Side,
};
use prop_multilevel::{MlRefiner, Multilevel, MultilevelConfig};
use prop_netlist::generate::{generate, generate_adversarial, GeneratorConfig};
use prop_netlist::Hypergraph;
use prop_verify::kway as oracle;
use proptest::prelude::*;
use std::time::Duration;

fn circuit(n: usize, seed: u64) -> Hypergraph {
    let nets = n * 11 / 10;
    generate(&GeneratorConfig::new(n, nets, nets * 7 / 2).with_seed(seed)).unwrap()
}

fn prop() -> Prop {
    Prop::new(PropConfig::calibrated())
}

fn ml(intra: ParallelPolicy) -> Multilevel<MlRefiner> {
    Multilevel::standard(MultilevelConfig {
        intra,
        ..MultilevelConfig::default()
    })
}

/// Assignment validity + bit-exact oracle agreement on both objectives
/// and the per-part weights.
fn assert_oracle_exact(graph: &Hypergraph, partition: &prop_core::KwayPartition, k: usize) {
    assert_eq!(partition.k(), k);
    assert_eq!(partition.len(), graph.num_nodes());
    assert!(partition.assignment().iter().all(|&p| (p as usize) < k));
    let a = partition.assignment();
    assert_eq!(partition.cut_cost(graph), oracle::kway_cut(graph, a, k as u32));
    assert_eq!(
        partition.connectivity_cost(graph),
        oracle::kway_connectivity(graph, a, k as u32)
    );
    assert_eq!(
        partition.part_weights(),
        oracle::part_weights(graph, a, k as u32).as_slice()
    );
}

#[test]
fn uniform_kway_is_oracle_exact_for_every_k() {
    let graph = circuit(300, 21);
    for k in [2usize, 3, 4, 8] {
        let config = KwayConfig {
            runs: 3,
            seed: 7,
            ..KwayConfig::new(k)
        };
        let report = partition_kway(&graph, &prop(), &config).unwrap();
        assert_eq!(report.status, RunStatus::Completed);
        assert_oracle_exact(&graph, &report.partition, k);
        // Every part is non-trivial on a 300-node circuit.
        assert!(report.partition.block_sizes().iter().all(|&s| s > 0));
    }
}

#[test]
fn budgeted_kway_is_oracle_exact_and_inside_budgets() {
    let graph = circuit(240, 22); // unit weights, total 240
    let budgets = vec![130.0, 65.0, 65.0, 40.0];
    let config = KwayConfig {
        budgets: Some(budgets.clone()),
        runs: 3,
        seed: 5,
        ..KwayConfig::new(4)
    };
    let report = partition_kway(&graph, &prop(), &config).unwrap();
    assert_oracle_exact(&graph, &report.partition, 4);
    assert!(oracle::check_budgets(report.partition.part_weights(), &budgets));
}

#[test]
fn kway_is_bit_identical_across_run_harness_thread_counts() {
    let graph = circuit(260, 23);
    for budgets in [None, Some(vec![140.0, 70.0, 70.0])] {
        let k = budgets.as_ref().map_or(4, Vec::len);
        let reference = partition_kway(
            &graph,
            &prop(),
            &KwayConfig {
                budgets: budgets.clone(),
                runs: 4,
                seed: 13,
                ..KwayConfig::new(k)
            },
        )
        .unwrap();
        for threads in [1usize, 2, 4] {
            let config = KwayConfig {
                budgets: budgets.clone(),
                runs: 4,
                seed: 13,
                policy: ParallelPolicy::Threads(threads),
                ..KwayConfig::new(k)
            };
            let report = partition_kway(&graph, &prop(), &config).unwrap();
            assert_eq!(report, reference, "threads = {threads}, budgets = {budgets:?}");
        }
    }
}

#[test]
fn multilevel_kway_is_bit_identical_across_intra_worker_counts() {
    let graph = circuit(400, 24);
    let reference = partition_kway(
        &graph,
        &ml(ParallelPolicy::Threads(1)),
        &KwayConfig {
            runs: 2,
            seed: 3,
            ..KwayConfig::new(4)
        },
    )
    .unwrap();
    assert_oracle_exact(&graph, &reference.partition, 4);
    for workers in [2usize, 4] {
        let report = partition_kway(
            &graph,
            &ml(ParallelPolicy::Threads(workers)),
            &KwayConfig {
                runs: 2,
                seed: 3,
                ..KwayConfig::new(4)
            },
        )
        .unwrap();
        assert_eq!(report, reference, "intra workers = {workers}");
    }
}

#[test]
fn k_equals_two_reduces_to_the_existing_bipartition_path() {
    let graph = circuit(220, 25);
    for engine in [
        Box::new(prop()) as Box<dyn Partitioner>,
        Box::new(ml(ParallelPolicy::Sequential)),
    ] {
        let config = KwayConfig {
            runs: 3,
            seed: 19,
            ..KwayConfig::new(2)
        };
        let report = partition_kway(&graph, engine.as_ref(), &config).unwrap();
        let balance = BalanceConstraint::weighted(0.45, 0.55, &graph).unwrap();
        let direct = engine
            .run_multi_parallel(&graph, balance, 3, 19, ParallelPolicy::Sequential)
            .unwrap();
        let sides: Vec<u32> = direct
            .partition
            .sides()
            .iter()
            .map(|s| s.index() as u32)
            .collect();
        assert_eq!(
            report.partition.assignment(),
            sides.as_slice(),
            "{} diverged from the bipartition harness",
            engine.name()
        );
        assert_eq!(report.partition.cut_cost(&graph), direct.cut_cost);
        assert_eq!(report.total_passes, direct.total_passes);
        // Side weights and part weights are the same numbers.
        let w = prop_core::SideWeights::new(&graph, &direct.partition);
        assert_eq!(
            report.partition.part_weights(),
            [w.get(Side::A), w.get(Side::B)].as_slice()
        );
    }
}

#[test]
fn cancellation_mid_recursion_yields_a_complete_feasible_assignment() {
    let graph = circuit(800, 26);
    let budgets = vec![220.0; 8]; // generous: 1760 against weight 800
    let token = CancelToken::new();
    token.set_timeout(Duration::from_millis(20));
    let config = KwayConfig {
        budgets: Some(budgets.clone()),
        runs: 60,
        seed: 1,
        ..KwayConfig::new(8)
    };
    let report = partition_kway_cancellable(&graph, &prop(), &config, &token).unwrap();
    // 60 runs × 7 bisections of an 800-node circuit dwarf a 20 ms
    // deadline, so the trip lands mid-recursion.
    assert_eq!(report.status, RunStatus::Cancelled);
    assert_oracle_exact(&graph, &report.partition, 8);
    assert!(oracle::check_budgets(report.partition.part_weights(), &budgets));
}

#[test]
fn pre_tripped_token_packs_without_running_engines() {
    let graph = circuit(200, 27);
    let token = CancelToken::new();
    token.cancel();
    let config = KwayConfig {
        runs: 4,
        ..KwayConfig::new(5)
    };
    let report = partition_kway_cancellable(&graph, &prop(), &config, &token).unwrap();
    assert_eq!(report.status, RunStatus::Cancelled);
    assert_eq!(report.total_passes, 0);
    assert_oracle_exact(&graph, &report.partition, 5);
}

#[test]
fn infeasible_budgets_are_typed_errors_not_panics() {
    let graph = circuit(100, 28);
    // Sum below the total node weight.
    let err = partition_kway(
        &graph,
        &prop(),
        &KwayConfig {
            budgets: Some(vec![40.0, 40.0]),
            ..KwayConfig::new(2)
        },
    )
    .unwrap_err();
    assert!(matches!(err, PartitionError::InfeasibleBudgets { .. }), "{err}");
    assert!(err.to_string().contains("infeasible"));
}

/// A feasible budget vector for `graph`: random positive shares scaled
/// to `sigma ≥ 1.05` times the total weight, each floored at the
/// heaviest node — so both of the driver's named prechecks pass by
/// construction.
fn feasible_budgets(graph: &Hypergraph, shares: &[f64], sigma: f64) -> Vec<f64> {
    let total = graph.total_node_weight();
    let heaviest = graph.max_node_weight();
    let share_sum: f64 = shares.iter().sum();
    shares
        .iter()
        .map(|s| (total * sigma * s / share_sum).max(heaviest * 1.001))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random adversarial netlists (single-pin nets, duplicate pins,
    /// giant nets, non-unit weights, isolated nodes) with random k and
    /// random feasible budgets: the driver never panics, and every `Ok`
    /// is oracle-exact and inside its budgets.
    #[test]
    fn adversarial_budgeted_kway_never_violates_budgets(
        seed in 0u64..400,
        k in 2usize..=9,
        shares in proptest::collection::vec(0.05f64..1.0, 9),
        sigma in 1.05f64..2.5,
    ) {
        let graph = generate_adversarial(seed).unwrap();
        let k = k.min(graph.num_nodes());
        let budgets = feasible_budgets(&graph, &shares[..k], sigma);
        let config = KwayConfig {
            budgets: Some(budgets.clone()),
            runs: 1,
            seed,
            ..KwayConfig::new(k)
        };
        match partition_kway(&graph, &prop(), &config) {
            Ok(report) => {
                prop_assert_eq!(report.partition.len(), graph.num_nodes());
                prop_assert!(report.partition.assignment().iter().all(|&p| (p as usize) < k));
                let weights = oracle::part_weights(
                    &graph,
                    report.partition.assignment(),
                    k as u32,
                );
                prop_assert!(oracle::check_budgets(&weights, &budgets));
                prop_assert_eq!(report.partition.part_weights(), weights.as_slice());
                prop_assert_eq!(
                    report.partition.cut_cost(&graph),
                    oracle::kway_cut(&graph, report.partition.assignment(), k as u32)
                );
            }
            // Tight caps on a lumpy weight profile may admit no packing;
            // that must surface as the typed error, never a panic.
            Err(PartitionError::InfeasibleBudgets { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Budgets that cannot hold the circuit are always the typed
    /// infeasibility error.
    #[test]
    fn underfull_budgets_are_always_typed_errors(
        seed in 0u64..400,
        k in 2usize..=6,
        shares in proptest::collection::vec(0.05f64..1.0, 6),
        shrink in 0.2f64..0.95,
    ) {
        let graph = generate_adversarial(seed).unwrap();
        let k = k.min(graph.num_nodes());
        let total = graph.total_node_weight();
        let share_sum: f64 = shares[..k].iter().sum();
        // Scaled strictly below the total weight: sum(budgets) < W.
        let budgets: Vec<f64> =
            shares[..k].iter().map(|s| total * shrink * s / share_sum).collect();
        let config = KwayConfig {
            budgets: Some(budgets),
            runs: 1,
            seed,
            ..KwayConfig::new(k)
        };
        prop_assert!(matches!(
            partition_kway(&graph, &prop(), &config),
            Err(PartitionError::InfeasibleBudgets { .. })
        ));
    }

    /// Uniform mode on adversarial netlists: never panics, always a
    /// complete oracle-exact assignment.
    #[test]
    fn adversarial_uniform_kway_is_total_and_oracle_exact(
        seed in 0u64..400,
        k in 2usize..=9,
    ) {
        let graph = generate_adversarial(seed).unwrap();
        let k = k.min(graph.num_nodes());
        let config = KwayConfig { runs: 1, seed, ..KwayConfig::new(k) };
        let report = partition_kway(&graph, &prop(), &config).unwrap();
        prop_assert_eq!(report.partition.len(), graph.num_nodes());
        prop_assert!(report.partition.assignment().iter().all(|&p| (p as usize) < k));
        prop_assert_eq!(
            report.partition.cut_cost(&graph),
            oracle::kway_cut(&graph, report.partition.assignment(), k as u32)
        );
        prop_assert_eq!(
            report.partition.connectivity_cost(&graph),
            oracle::kway_connectivity(&graph, report.partition.assignment(), k as u32)
        );
    }
}
