//! Integration: text formats round-trip real suite circuits, and a
//! parsed-back circuit partitions identically to the original.

use prop_suite::core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_suite::netlist::{format, suite};

#[test]
fn hgr_roundtrip_preserves_suite_circuits() {
    for name in ["balu", "bm1", "t6"] {
        let graph = suite::by_name(name).unwrap().instantiate().unwrap();
        let text = format::write_hgr(&graph);
        let parsed = format::parse_hgr(&text).unwrap();
        assert_eq!(graph, parsed, "{name}");
    }
}

#[test]
fn netd_roundtrip_preserves_suite_circuits() {
    let graph = suite::by_name("t3").unwrap().instantiate().unwrap();
    let text = format::write_netd(&graph);
    let parsed = format::parse_netd(&text).unwrap();
    // netd attaches synthesised names; compare structure via hgr text.
    assert_eq!(format::write_hgr(&graph), format::write_hgr(&parsed));
}

#[test]
fn parsed_circuit_partitions_identically() {
    let graph = suite::by_name("t5").unwrap().instantiate().unwrap();
    let parsed = format::parse_hgr(&format::write_hgr(&graph)).unwrap();
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let prop = Prop::new(PropConfig::calibrated());
    let a = prop.run_seeded(&graph, balance, 5).unwrap();
    let b = prop.run_seeded(&parsed, balance, 5).unwrap();
    assert_eq!(a, b);
}
