//! Integration: text formats round-trip real suite circuits, a parsed-back
//! circuit partitions identically to the original, the binary `.hgb`
//! snapshot agrees with the text formats bit-for-bit, and the parsers
//! survive adversarial circuits and mutated text without panicking.

use prop_suite::core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_suite::netlist::generate::generate_adversarial;
use prop_suite::netlist::{format, hgb, suite};

#[test]
fn hgr_roundtrip_preserves_suite_circuits() {
    for name in ["balu", "bm1", "t6"] {
        let graph = suite::by_name(name).unwrap().instantiate().unwrap();
        let text = format::write_hgr(&graph);
        let parsed = format::parse_hgr(&text).unwrap();
        assert_eq!(graph, parsed, "{name}");
    }
}

#[test]
fn netd_roundtrip_preserves_suite_circuits() {
    let graph = suite::by_name("t3").unwrap().instantiate().unwrap();
    let text = format::write_netd(&graph);
    let parsed = format::parse_netd(&text).unwrap();
    // netd attaches synthesised names; compare structure via hgr text.
    assert_eq!(format::write_hgr(&graph), format::write_hgr(&parsed));
}

#[test]
fn parsed_circuit_partitions_identically() {
    let graph = suite::by_name("t5").unwrap().instantiate().unwrap();
    let parsed = format::parse_hgr(&format::write_hgr(&graph)).unwrap();
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let prop = Prop::new(PropConfig::calibrated());
    let a = prop.run_seeded(&graph, balance, 5).unwrap();
    let b = prop.run_seeded(&parsed, balance, 5).unwrap();
    assert_eq!(a, b);
}

/// Adversarial circuits — single-pin nets, duplicate pins (already
/// de-duplicated by the builder), giant nets, isolated nodes, fractional
/// weights — round-trip exactly through both text formats.
#[test]
fn adversarial_circuits_roundtrip_both_formats() {
    for seed in 0..128 {
        let graph = generate_adversarial(seed).unwrap();
        let hgr = format::write_hgr(&graph);
        let reparsed = format::parse_hgr(&hgr).expect("hgr reparse");
        assert_eq!(graph, reparsed, "hgr seed {seed}");
        let netd = format::write_netd(&graph);
        let reparsed = format::parse_netd(&netd).expect("netd reparse");
        // netd synthesises node names; compare structure via hgr text.
        assert_eq!(hgr, format::write_hgr(&reparsed), "netd seed {seed}");
    }
}

/// Every Table 1 suite circuit survives text → `.hgb` → [`Hypergraph`]
/// with exact equality (weights are carried as raw f64 bits, so this is
/// bit-for-bit, not approximate).
#[test]
fn hgb_snapshot_preserves_every_suite_circuit() {
    for spec in suite::table1() {
        let graph = spec.instantiate().unwrap();
        let bytes = hgb::write_hgb(&graph);
        let parsed = hgb::parse_hgb(&bytes).unwrap();
        assert_eq!(graph, parsed, "{}", spec.name);
        // Header stats agree without touching the sections.
        let stats = hgb::peek_stats(&bytes).unwrap();
        assert_eq!(stats.nodes as usize, graph.num_nodes(), "{}", spec.name);
        assert_eq!(stats.nets as usize, graph.num_nets(), "{}", spec.name);
        assert_eq!(stats.pins as usize, graph.num_pins(), "{}", spec.name);
    }
}

/// The mmap-backed and buffered-read load paths observe byte-identical
/// file images and materialize equal graphs.
#[test]
fn hgb_mmap_and_buffered_loads_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("prop-fmt-hgb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t5.hgb");
    let graph = suite::by_name("t5").unwrap().instantiate().unwrap();
    hgb::write_hgb_file(&graph, &path).unwrap();

    let mapped = hgb::HgbFile::open(&path).unwrap();
    let buffered = hgb::HgbFile::open_buffered(&path).unwrap();
    assert_eq!(buffered.mode().to_string(), "read");
    assert_eq!(mapped.bytes(), buffered.bytes(), "load paths disagree on bytes");

    let from_map = mapped.view().unwrap().to_hypergraph().unwrap();
    let from_read = buffered.view().unwrap().to_hypergraph().unwrap();
    assert_eq!(from_map, from_read);
    assert_eq!(from_map, graph);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cut recount oracle: a partition computed once scores bit-for-bit the
/// same whether the circuit was loaded from text or from its `.hgb`
/// snapshot — the binary format introduces no weight drift.
#[test]
fn hgb_cut_recount_matches_text_bit_for_bit() {
    use prop_suite::verify::oracle::naive_cut;
    for name in ["balu", "t2", "bm1"] {
        let text_graph = suite::by_name(name).unwrap().instantiate().unwrap();
        let hgb_graph = hgb::parse_hgb(&hgb::write_hgb(&text_graph)).unwrap();

        let balance = BalanceConstraint::bisection(text_graph.num_nodes());
        let prop = Prop::new(PropConfig::calibrated());
        let result = prop.run_seeded(&text_graph, balance, 11).unwrap();

        let cut_text = naive_cut(&text_graph, &result.partition);
        let cut_hgb = naive_cut(&hgb_graph, &result.partition);
        assert_eq!(
            cut_text.to_bits(),
            cut_hgb.to_bits(),
            "{name}: text {cut_text} vs hgb {cut_hgb}"
        );
    }
}

/// A tiny deterministic xorshift so the mutation fuzzer needs no RNG
/// plumbing and every failure reproduces from its seed alone.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Applies one random text mutation: delete a line, duplicate a line,
/// swap two tokens, replace a token with garbage, or truncate the text.
fn mutate(text: &str, rng: &mut XorShift) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match rng.below(5) {
        0 if !lines.is_empty() => {
            let drop = rng.below(lines.len());
            lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        1 if !lines.is_empty() => {
            let dup = rng.below(lines.len());
            let mut out: Vec<&str> = lines.clone();
            out.insert(dup, lines[dup]);
            out.join("\n")
        }
        2 => {
            let toks: Vec<&str> = text.split_whitespace().collect();
            if toks.len() < 2 {
                return text.to_string();
            }
            let (i, j) = (rng.below(toks.len()), rng.below(toks.len()));
            let mut out = toks.clone();
            out.swap(i, j);
            out.join(" ")
        }
        3 => {
            let toks: Vec<&str> = text.split_whitespace().collect();
            if toks.is_empty() {
                return text.to_string();
            }
            let garbage = ["-1", "0", "99999999999999999999", "NaN", "1e309", "x", "%", ""];
            let i = rng.below(toks.len());
            let mut out: Vec<&str> = toks.clone();
            out[i] = garbage[rng.below(garbage.len())];
            out.join(" ")
        }
        _ => {
            let cut = rng.below(text.len().max(1));
            let mut t = text.to_string();
            t.truncate(cut);
            t
        }
    }
}

/// Both parsers must return `Ok` or `Err` — never panic — on mutated
/// versions of valid files. Any parse that still succeeds must produce a
/// graph that survives its own write/parse round-trip.
#[test]
fn mutated_text_never_panics_either_parser() {
    let mut rng = XorShift(0x5eed_f0cc_ed01_d1ce);
    for seed in 0..48 {
        let graph = generate_adversarial(seed).unwrap();
        for base in [format::write_hgr(&graph), format::write_netd(&graph)] {
            let mut text = base.clone();
            for _ in 0..24 {
                text = mutate(&text, &mut rng);
                if let Ok(g) = format::parse_hgr(&text) {
                    let again = format::parse_hgr(&format::write_hgr(&g)).expect("re-roundtrip");
                    assert_eq!(g, again);
                }
                if let Ok(g) = format::parse_netd(&text) {
                    let again =
                        format::parse_netd(&format::write_netd(&g)).expect("re-roundtrip");
                    assert_eq!(format::write_hgr(&g), format::write_hgr(&again));
                }
            }
        }
    }
}

/// Handwritten degenerate inputs hit the documented error paths (and the
/// few that are legal stay legal).
#[test]
fn degenerate_inputs_are_rejected_or_legal() {
    // Legal: a lone single-pin net, an isolated node, a giant duplicate-pin
    // net that collapses.
    let g = format::parse_hgr("1 3\n2\n").unwrap();
    assert_eq!(g.num_pins(), 1);
    let g = format::parse_hgr("1 4\n1 1 1 2 2\n").unwrap();
    assert_eq!(g.num_pins(), 2);
    let g = format::parse_netd("node a\nnode b\nnet 1 a a a\n").unwrap();
    assert_eq!(g.num_pins(), 1);
    // Legal but subtle: under format flag 1 the first token of a net line
    // is its weight, so "1 2" is a single-pin net of weight 1 on node 2.
    let g = format::parse_hgr("1 2 1\n1 2\n").unwrap();
    assert_eq!(g.num_pins(), 1);
    // Errors, not panics.
    for bad in [
        "",
        "1 2",                          // missing net line
        "1 2\n\n",                      // blank net line is filtered => count short
        "1 2\n0\n",                     // 0 pin index (1-based format)
        "1 2\n3\n",                     // out-of-range pin
        "2 2\n1\n2\n3 1\n",             // extra net line
        "1 2 1\n\nx 1 2\n",             // weighted flag with bad weight token
        "1 2 7\n1 2\n",                 // unsupported format flag
        "1 2 10\n1 2\n1\n",             // missing node-weight line
        "1 2 10\n1 2\n-2\n1\n",         // non-positive node weight
        "18446744073709551616 1\n",     // net count overflows usize
        "1 2\n1 99999999999999999999\n",// pin overflows usize
    ] {
        assert!(format::parse_hgr(bad).is_err(), "hgr accepted {bad:?}");
    }
    for bad in [
        "net 1 a\n",         // undeclared name
        "node a\nnode a\n",  // duplicate name
        "node a\nnet a\n",   // weight not a number
        "node a\nnet 1\n",   // empty net
        "node a\nnet 0 a\n", // non-positive net weight
        "nodea\n",           // unknown directive
    ] {
        assert!(format::parse_netd(bad).is_err(), "netd accepted {bad:?}");
    }
}
