//! Cross-crate integration: every partitioner in the suite produces a
//! balanced partition whose reported cut matches a from-scratch recount,
//! and the paper's quality ordering holds on the proxy circuits.

use prop_suite::core::{cut_cost, BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_suite::fm::{FmBucket, FmTree, Kl, La};
use prop_suite::netlist::suite;
use prop_suite::spectral::{Eig1, GlobalPartitioner, MeloStyle, ParaboliStyle, WindowStyle};

fn iterative_methods() -> Vec<(&'static str, Box<dyn Partitioner>)> {
    vec![
        ("FM-bucket", Box::new(FmBucket::default())),
        ("FM-tree", Box::new(FmTree::default())),
        ("LA-2", Box::new(La::new(2))),
        ("LA-3", Box::new(La::new(3))),
        ("KL", Box::new(Kl::default())),
        ("PROP", Box::new(Prop::new(PropConfig::calibrated()))),
        ("PROP-paper", Box::new(Prop::new(PropConfig::default()))),
    ]
}

fn global_methods() -> Vec<(&'static str, Box<dyn GlobalPartitioner>)> {
    vec![
        ("EIG1", Box::new(Eig1::default())),
        ("MELO", Box::new(MeloStyle::default())),
        ("PARABOLI", Box::new(ParaboliStyle::default())),
        ("WINDOW", Box::new(WindowStyle { runs: 3, seed: 0 })),
    ]
}

#[test]
fn every_method_is_sound_on_both_balance_regimes() {
    let spec = suite::by_name("balu").unwrap();
    let graph = spec.instantiate().unwrap();
    for (r1, r2) in [(0.5, 0.5), (0.45, 0.55)] {
        let balance = BalanceConstraint::new(r1, r2, graph.num_nodes()).unwrap();
        for (name, method) in iterative_methods() {
            let result = method.run_multi(&graph, balance, 2, 7).unwrap();
            assert!(
                result.partition.is_balanced(balance),
                "{name} violated balance at ({r1}, {r2})"
            );
            assert_eq!(
                result.cut_cost,
                cut_cost(&graph, &result.partition),
                "{name} misreported its cut"
            );
        }
        for (name, method) in global_methods() {
            let result = method.partition(&graph, balance).unwrap();
            assert!(
                result.partition.is_balanced(balance),
                "{name} violated balance at ({r1}, {r2})"
            );
            assert_eq!(
                result.cut_cost,
                cut_cost(&graph, &result.partition),
                "{name} misreported its cut"
            );
        }
    }
}

#[test]
fn prop_beats_fm20_on_clustered_circuits() {
    // The paper's headline: PROP(20) ~30% better than FM(20). On the
    // synthetic proxies the margin is even wider; require a strict win
    // with a comfortable cushion on each of three circuits.
    for name in ["balu", "struct", "t2"] {
        let graph = suite::by_name(name).unwrap().instantiate().unwrap();
        let balance = BalanceConstraint::bisection(graph.num_nodes());
        let fm = FmBucket::default()
            .run_multi(&graph, balance, 20, 0)
            .unwrap();
        let prop = Prop::new(PropConfig::calibrated())
            .run_multi(&graph, balance, 20, 0)
            .unwrap();
        assert!(
            prop.cut_cost < fm.cut_cost * 0.85,
            "{name}: PROP {} not clearly better than FM20 {}",
            prop.cut_cost,
            fm.cut_cost
        );
    }
}

#[test]
fn prop_beats_eig1_at_45_55() {
    // Table 3's shape: stand-alone PROP beats the one-shot spectral split.
    let mut prop_total = 0.0;
    let mut eig_total = 0.0;
    for name in ["balu", "struct", "t2"] {
        let graph = suite::by_name(name).unwrap().instantiate().unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        prop_total += Prop::new(PropConfig::calibrated())
            .run_multi(&graph, balance, 10, 0)
            .unwrap()
            .cut_cost;
        eig_total += Eig1::default().partition(&graph, balance).unwrap().cut_cost;
    }
    assert!(
        prop_total <= eig_total,
        "PROP total {prop_total} worse than EIG1 total {eig_total}"
    );
}

#[test]
fn multi_run_results_are_reproducible() {
    let graph = suite::by_name("t3").unwrap().instantiate().unwrap();
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    for (name, method) in iterative_methods() {
        let a = method.run_multi(&graph, balance, 3, 11).unwrap();
        let b = method.run_multi(&graph, balance, 3, 11).unwrap();
        assert_eq!(a, b, "{name} is not deterministic in its seed");
    }
}

#[test]
fn more_runs_never_worsen_the_best_cut() {
    let graph = suite::by_name("t4").unwrap().instantiate().unwrap();
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let prop = Prop::new(PropConfig::calibrated());
    let five = prop.run_multi(&graph, balance, 5, 3).unwrap();
    let ten = prop.run_multi(&graph, balance, 10, 3).unwrap();
    // Runs 0..5 are shared (same seeds), so best-of-10 <= best-of-5.
    assert!(ten.cut_cost <= five.cut_cost);
}
