//! Integration check: the Figure-1 worked example reproduces the paper's
//! printed numbers end-to-end through the public API.

use prop_suite::core::example::{
    figure1, paper_node, EXPECTED_FM_GAINS, EXPECTED_SECOND_ITERATION_GAINS, V1_NODES,
};
use prop_suite::fm::La;

#[test]
fn fm_gains_match_figure_1a() {
    let fig = figure1();
    let gains = fig.fm_gains();
    for paper in 1..=V1_NODES {
        assert_eq!(
            gains[paper_node(paper).index()],
            EXPECTED_FM_GAINS[paper - 1],
            "paper node {paper}"
        );
    }
}

#[test]
fn prop_gains_match_figure_1c() {
    let fig = figure1();
    let gains = fig.second_iteration_gains();
    for paper in 1..=V1_NODES {
        let got = gains[paper_node(paper).index()];
        let want = EXPECTED_SECOND_ITERATION_GAINS[paper - 1];
        assert!(
            (got - want).abs() < 1e-12,
            "paper node {paper}: got {got}, paper prints {want}"
        );
    }
}

#[test]
fn prop_separates_the_fm_tie_as_the_paper_argues() {
    let fig = figure1();
    let fm = fig.fm_gains();
    let prob = fig.second_iteration_gains();
    // FM ties nodes 1, 2, 3.
    let (n1, n2, n3) = (
        paper_node(1).index(),
        paper_node(2).index(),
        paper_node(3).index(),
    );
    assert_eq!(fm[n1], fm[n2]);
    assert_eq!(fm[n2], fm[n3]);
    // PROP orders 3 > 2 > 1.
    assert!(prob[n3] > prob[n2]);
    assert!(prob[n2] > prob[n1]);
}

#[test]
fn la3_cannot_separate_nodes_2_and_3() {
    // The paper: "increasing the lookahead of LA beyond 3 does not change
    // this". LA-3 and LA-4 vectors of nodes 2 and 3 coincide.
    let fig = figure1();
    for k in [3, 4] {
        let la = La::new(k);
        let balance =
            prop_suite::core::BalanceConstraint::new(0.45, 0.55, fig.graph.num_nodes()).unwrap();
        // The partitioner API does not expose raw vectors; the unit tests
        // in prop-fm assert them. Here we only require LA to run on the
        // instance without violating balance.
        use prop_suite::core::Partitioner;
        let result = la.run_seeded(&fig.graph, balance, 0).unwrap();
        assert!(result.partition.is_balanced(balance), "LA-{k}");
    }
}
