//! Property-based integration tests: random hypergraphs and partitions
//! must uphold the core invariants across crates.

use proptest::prelude::*;
use prop_suite::core::{
    probabilistic_gains, BalanceConstraint, Bipartition, CutState, Partitioner, Prop,
    PropConfig, Side,
};
use prop_suite::dstruct::{AvlTree, BucketList, PrefixTracker};
use prop_suite::fm::{FmBucket, FmTree, La};
use prop_suite::netlist::{Hypergraph, HypergraphBuilder, NodeId};
use prop_suite::spectral::ordering::{best_prefix_split, max_adjacency_order, order_by_key};
use prop_suite::verify::oracle::best_prefix_naive;
use std::collections::BTreeSet;

/// Strategy: a random hypergraph with 4..=40 nodes and 2..=60 nets of
/// size 2..=5 (unit weights, so every partitioner applies).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..=40).prop_flat_map(|n| {
        let net = proptest::collection::vec(0..n, 2..=5);
        proptest::collection::vec(net, 2..=60).prop_map(move |nets| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                // Duplicates are de-duplicated; a net may collapse to one
                // pin, which is legal.
                b.add_net(1.0, pins).expect("in-range pins");
            }
            b.build().expect("builder is infallible here")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental cut maintenance agrees with a from-scratch recount
    /// after any move sequence.
    #[test]
    fn cut_state_matches_recount(graph in arb_hypergraph(), moves in proptest::collection::vec(0usize..40, 1..30)) {
        let n = graph.num_nodes();
        let mut partition = Bipartition::from_sides(vec![Side::A; n]);
        let mut cut = CutState::new(&graph, &partition);
        for m in moves {
            let v = NodeId::new(m % n);
            let before = cut.cut_cost();
            let predicted = cut.move_gain(&graph, &partition, v);
            let realised = cut.apply_move(&graph, &mut partition, v);
            prop_assert_eq!(predicted, realised);
            prop_assert_eq!(before - realised, cut.cut_cost());
            let fresh = CutState::new(&graph, &partition);
            prop_assert_eq!(&cut, &fresh);
        }
    }

    /// Every iterative improver preserves feasibility and never worsens
    /// the cut of a feasible starting partition.
    #[test]
    fn improvers_never_worsen(graph in arb_hypergraph(), seed in 0u64..1000) {
        let n = graph.num_nodes();
        let balance = BalanceConstraint::bisection(n);
        let methods: Vec<Box<dyn Partitioner>> = vec![
            Box::new(FmBucket::default()),
            Box::new(FmTree::default()),
            Box::new(La::new(2)),
            Box::new(Prop::new(PropConfig::calibrated())),
        ];
        for method in methods {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut partition = Bipartition::random(n, &mut rng);
            let before = CutState::new(&graph, &partition).cut_cost();
            let stats = method.improve(&graph, &mut partition, balance);
            let after = CutState::new(&graph, &partition).cut_cost();
            prop_assert!(after <= before, "{} worsened {before} -> {after}", method.name());
            prop_assert_eq!(stats.cut_cost, after);
            prop_assert!(partition.is_balanced(balance), "{} unbalanced", method.name());
        }
    }

    /// The probabilistic gain of Eqns. 3-4 is bounded by the weighted
    /// degree, and locked nodes always report gain 0.
    #[test]
    fn probabilistic_gains_are_bounded(
        graph in arb_hypergraph(),
        seed in 0u64..1000,
        p in 0.05f64..1.0,
    ) {
        use rand::SeedableRng;
        let n = graph.num_nodes();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let partition = Bipartition::random(n, &mut rng);
        let probs = vec![p; n];
        let mut locked = vec![false; n];
        if n > 2 {
            locked[0] = true;
            locked[n - 1] = true;
        }
        let gains = probabilistic_gains(&graph, &partition, &probs, &locked);
        for v in graph.nodes() {
            let degree_weight: f64 = graph
                .nets_of(v)
                .iter()
                .map(|&net| graph.net_weight(net))
                .sum();
            prop_assert!(gains[v.index()].abs() <= degree_weight + 1e-9);
            if locked[v.index()] {
                prop_assert_eq!(gains[v.index()], 0.0);
            }
        }
    }

    /// Any permutation ordering yields a balance-feasible best-prefix
    /// split whose reported cut matches a recount.
    #[test]
    fn ordering_splits_are_feasible(graph in arb_hypergraph(), key_seed in 0u64..1000) {
        let n = graph.num_nodes();
        let balance = BalanceConstraint::new(0.45, 0.55, n).unwrap();
        // Pseudo-random keys from the seed.
        let keys: Vec<f64> = (0..n)
            .map(|i| {
                let x = (key_seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((i as u64).wrapping_mul(0x517cc1b727220a95)))
                    >> 11;
                x as f64
            })
            .collect();
        let order = order_by_key(&graph, &keys);
        let (partition, cut) = best_prefix_split(&graph, balance, &order);
        prop_assert!(partition.is_balanced(balance));
        prop_assert_eq!(cut, CutState::new(&graph, &partition).cut_cost());
        // Max-adjacency orderings are permutations too.
        let ma = max_adjacency_order(&graph, NodeId::new(0));
        let (p2, c2) = best_prefix_split(&graph, balance, &ma);
        prop_assert!(p2.is_balanced(balance));
        prop_assert_eq!(c2, CutState::new(&graph, &p2).cut_cost());
    }

    /// hgr round-trips preserve arbitrary hypergraphs.
    #[test]
    fn hgr_roundtrip(graph in arb_hypergraph()) {
        use prop_suite::netlist::format::{parse_hgr, write_hgr};
        let text = write_hgr(&graph);
        let parsed = parse_hgr(&text).unwrap();
        prop_assert_eq!(graph, parsed);
    }
}

/// One scripted operation against a keyed container under test.
#[derive(Clone, Debug)]
enum SetOp {
    Insert(i64, u32),
    Remove(i64, u32),
    CheckMax,
}

fn arb_set_ops() -> impl Strategy<Value = Vec<SetOp>> {
    let op = (0u8..3, -50i64..=50, 0u32..24).prop_map(|(kind, gain, id)| match kind {
        0 => SetOp::Insert(gain, id),
        1 => SetOp::Remove(gain, id),
        _ => SetOp::CheckMax,
    });
    proptest::collection::vec(op, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena AVL tree behaves exactly like a `BTreeSet` model under
    /// arbitrary insert/remove/max scripts, including duplicate rejection
    /// and full ascending/descending iteration order.
    #[test]
    fn avl_matches_btreeset_model(ops in arb_set_ops()) {
        let mut tree: AvlTree<(i64, u32)> = AvlTree::new();
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(g, id) => {
                    prop_assert_eq!(tree.insert((g, id)), model.insert((g, id)));
                }
                SetOp::Remove(g, id) => {
                    prop_assert_eq!(tree.remove(&(g, id)), model.remove(&(g, id)));
                }
                SetOp::CheckMax => {
                    prop_assert_eq!(tree.max(), model.last());
                    prop_assert_eq!(tree.min(), model.first());
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            tree.validate();
        }
        let asc: Vec<(i64, u32)> = tree.iter().copied().collect();
        let expect_asc: Vec<(i64, u32)> = model.iter().copied().collect();
        prop_assert_eq!(asc, expect_asc);
        let desc: Vec<(i64, u32)> = tree.iter_desc().copied().collect();
        let expect_desc: Vec<(i64, u32)> = model.iter().rev().copied().collect();
        prop_assert_eq!(desc, expect_desc);
    }

    /// The FM bucket list behaves exactly like a per-gain LIFO-stack
    /// model: same membership, same max gain, and the same head-of-max
    /// item (the FM tie-breaking rule), under arbitrary scripts.
    #[test]
    fn bucket_list_matches_stack_model(ops in arb_set_ops()) {
        const CAP: usize = 24;
        const BOUND: i64 = 50;
        let mut bucket = BucketList::new(CAP, BOUND);
        // Model: per-gain stacks (push on insert, most recent serves first).
        let mut stacks: std::collections::BTreeMap<i64, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut gain_of: Vec<Option<i64>> = vec![None; CAP];
        for op in ops {
            match op {
                SetOp::Insert(g, id) => {
                    let item = id as usize;
                    match gain_of[item] {
                        None => {
                            bucket.insert(item, g);
                        }
                        Some(old) => {
                            bucket.update(item, g);
                            stacks.get_mut(&old).unwrap().retain(|&x| x != item);
                        }
                    }
                    gain_of[item] = Some(g);
                    stacks.entry(g).or_default().push(item);
                }
                SetOp::Remove(_, id) => {
                    let item = id as usize;
                    prop_assert_eq!(bucket.remove(item), gain_of[item].is_some());
                    if let Some(old) = gain_of[item].take() {
                        stacks.get_mut(&old).unwrap().retain(|&x| x != item);
                    }
                }
                SetOp::CheckMax => {
                    let expect = stacks
                        .iter()
                        .rev()
                        .find(|(_, s)| !s.is_empty())
                        .map(|(&g, s)| (g, *s.last().unwrap()));
                    prop_assert_eq!(bucket.max_gain(), expect.map(|(g, _)| g));
                    prop_assert_eq!(bucket.peek_max(), expect.map(|(_, i)| i));
                }
            }
            let live = gain_of.iter().filter(|g| g.is_some()).count();
            prop_assert_eq!(bucket.len(), live);
        }
        // Final descending sweep matches the model ordering exactly
        // (LIFO within each gain bucket).
        let seq: Vec<(usize, i64)> = bucket.iter_desc().collect();
        let expect: Vec<(usize, i64)> = stacks
            .iter()
            .rev()
            .flat_map(|(&g, s)| s.iter().rev().map(move |&i| (i, g)))
            .collect();
        prop_assert_eq!(seq, expect);
    }

    /// `PrefixTracker::best` agrees with the naive max-prefix scan of the
    /// verification oracle on arbitrary gain/feasibility sequences, and
    /// both respect the shortest-prefix tie rule.
    #[test]
    fn prefix_tracker_matches_naive_scan(
        moves in proptest::collection::vec((-4i32..=4, 0u8..2), 0..40),
    ) {
        let mut tracker = PrefixTracker::new();
        // Small integral gains (scaled) so exact ties actually occur and
        // exercise the shortest-prefix rule.
        for &(g, ok) in &moves {
            tracker.push(f64::from(g) * 0.5, ok == 1);
        }
        let naive = best_prefix_naive(tracker.gains(), tracker.feasibility());
        match (tracker.best(), naive) {
            (None, None) => {}
            (Some(b), Some((len, gain))) => {
                prop_assert_eq!(b.moves, len);
                prop_assert_eq!(b.gain, gain);
            }
            (tracker_best, naive_best) => {
                prop_assert!(false, "tracker {tracker_best:?} vs naive {naive_best:?}");
            }
        }
        // The committed prefix, when present, is strictly positive and
        // ends feasible.
        if let Some(b) = tracker.best() {
            prop_assert!(b.gain > 0.0);
            prop_assert!(tracker.feasibility()[b.moves - 1]);
        }
    }
}
