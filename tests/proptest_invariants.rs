//! Property-based integration tests: random hypergraphs and partitions
//! must uphold the core invariants across crates.

use proptest::prelude::*;
use prop_suite::core::{
    probabilistic_gains, BalanceConstraint, Bipartition, CutState, Partitioner, Prop,
    PropConfig, Side,
};
use prop_suite::fm::{FmBucket, FmTree, La};
use prop_suite::netlist::{Hypergraph, HypergraphBuilder, NodeId};
use prop_suite::spectral::ordering::{best_prefix_split, max_adjacency_order, order_by_key};

/// Strategy: a random hypergraph with 4..=40 nodes and 2..=60 nets of
/// size 2..=5 (unit weights, so every partitioner applies).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..=40).prop_flat_map(|n| {
        let net = proptest::collection::vec(0..n, 2..=5);
        proptest::collection::vec(net, 2..=60).prop_map(move |nets| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                // Duplicates are de-duplicated; a net may collapse to one
                // pin, which is legal.
                b.add_net(1.0, pins).expect("in-range pins");
            }
            b.build().expect("builder is infallible here")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental cut maintenance agrees with a from-scratch recount
    /// after any move sequence.
    #[test]
    fn cut_state_matches_recount(graph in arb_hypergraph(), moves in proptest::collection::vec(0usize..40, 1..30)) {
        let n = graph.num_nodes();
        let mut partition = Bipartition::from_sides(vec![Side::A; n]);
        let mut cut = CutState::new(&graph, &partition);
        for m in moves {
            let v = NodeId::new(m % n);
            let before = cut.cut_cost();
            let predicted = cut.move_gain(&graph, &partition, v);
            let realised = cut.apply_move(&graph, &mut partition, v);
            prop_assert_eq!(predicted, realised);
            prop_assert_eq!(before - realised, cut.cut_cost());
            let fresh = CutState::new(&graph, &partition);
            prop_assert_eq!(&cut, &fresh);
        }
    }

    /// Every iterative improver preserves feasibility and never worsens
    /// the cut of a feasible starting partition.
    #[test]
    fn improvers_never_worsen(graph in arb_hypergraph(), seed in 0u64..1000) {
        let n = graph.num_nodes();
        let balance = BalanceConstraint::bisection(n);
        let methods: Vec<Box<dyn Partitioner>> = vec![
            Box::new(FmBucket::default()),
            Box::new(FmTree::default()),
            Box::new(La::new(2)),
            Box::new(Prop::new(PropConfig::calibrated())),
        ];
        for method in methods {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut partition = Bipartition::random(n, &mut rng);
            let before = CutState::new(&graph, &partition).cut_cost();
            let stats = method.improve(&graph, &mut partition, balance);
            let after = CutState::new(&graph, &partition).cut_cost();
            prop_assert!(after <= before, "{} worsened {before} -> {after}", method.name());
            prop_assert_eq!(stats.cut_cost, after);
            prop_assert!(partition.is_balanced(balance), "{} unbalanced", method.name());
        }
    }

    /// The probabilistic gain of Eqns. 3-4 is bounded by the weighted
    /// degree, and locked nodes always report gain 0.
    #[test]
    fn probabilistic_gains_are_bounded(
        graph in arb_hypergraph(),
        seed in 0u64..1000,
        p in 0.05f64..1.0,
    ) {
        use rand::SeedableRng;
        let n = graph.num_nodes();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let partition = Bipartition::random(n, &mut rng);
        let probs = vec![p; n];
        let mut locked = vec![false; n];
        if n > 2 {
            locked[0] = true;
            locked[n - 1] = true;
        }
        let gains = probabilistic_gains(&graph, &partition, &probs, &locked);
        for v in graph.nodes() {
            let degree_weight: f64 = graph
                .nets_of(v)
                .iter()
                .map(|&net| graph.net_weight(net))
                .sum();
            prop_assert!(gains[v.index()].abs() <= degree_weight + 1e-9);
            if locked[v.index()] {
                prop_assert_eq!(gains[v.index()], 0.0);
            }
        }
    }

    /// Any permutation ordering yields a balance-feasible best-prefix
    /// split whose reported cut matches a recount.
    #[test]
    fn ordering_splits_are_feasible(graph in arb_hypergraph(), key_seed in 0u64..1000) {
        let n = graph.num_nodes();
        let balance = BalanceConstraint::new(0.45, 0.55, n).unwrap();
        // Pseudo-random keys from the seed.
        let keys: Vec<f64> = (0..n)
            .map(|i| {
                let x = (key_seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((i as u64).wrapping_mul(0x517cc1b727220a95)))
                    >> 11;
                x as f64
            })
            .collect();
        let order = order_by_key(&graph, &keys);
        let (partition, cut) = best_prefix_split(&graph, balance, &order);
        prop_assert!(partition.is_balanced(balance));
        prop_assert_eq!(cut, CutState::new(&graph, &partition).cut_cost());
        // Max-adjacency orderings are permutations too.
        let ma = max_adjacency_order(&graph, NodeId::new(0));
        let (p2, c2) = best_prefix_split(&graph, balance, &ma);
        prop_assert!(p2.is_balanced(balance));
        prop_assert_eq!(c2, CutState::new(&graph, &p2).cut_cost());
    }

    /// hgr round-trips preserve arbitrary hypergraphs.
    #[test]
    fn hgr_roundtrip(graph in arb_hypergraph()) {
        use prop_suite::netlist::format::{parse_hgr, write_hgr};
        let text = write_hgr(&graph);
        let parsed = parse_hgr(&text).unwrap();
        prop_assert_eq!(graph, parsed);
    }
}
