//! Umbrella crate for the PROP reproduction suite.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests (and downstream users who want everything) can depend
//! on a single package:
//!
//! * [`netlist`] — hypergraph substrate, formats, synthetic benchmark suite.
//! * [`dstruct`] — gain containers (bucket list, AVL tree, prefix tracker).
//! * [`core`] — the PROP partitioner and the shared bipartition framework.
//! * [`fm`] — FM-bucket, FM-tree, LA-k, and KL baselines.
//! * [`linalg`] — sparse linear algebra for the spectral baselines.
//! * [`spectral`] — EIG1, MELO-, PARABOLI-, and WINDOW-style partitioners.
//! * [`multilevel`] — the clustering pre-phase the paper's conclusion
//!   anticipates: heavy-edge coarsening with PROP refinement per level.
//! * [`verify`] — differential-oracle verification: naive reference
//!   oracles, per-move invariant auditors, and a from-scratch PROP
//!   mirror (build with `--features debug-audit` to install auditors
//!   into live engines).
//!
//! # Quickstart
//!
//! ```
//! use prop_suite::netlist::generate::{generate, GeneratorConfig};
//! use prop_suite::core::{BalanceConstraint, Prop, PropConfig, Partitioner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::new(200, 220, 700))?;
//! let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
//! let result = Prop::new(PropConfig::default()).run_seeded(&graph, balance, 1)?;
//! assert!(result.cut_cost >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use prop_core as core;
pub use prop_dstruct as dstruct;
pub use prop_fm as fm;
pub use prop_linalg as linalg;
pub use prop_multilevel as multilevel;
pub use prop_netlist as netlist;
pub use prop_spectral as spectral;
pub use prop_verify as verify;
