//! Recursive bisection into a k-way partition — the standard use of
//! 2-way min-cut partitioners motivated in the paper's introduction
//! (multi-FPGA mapping, placement, parallel simulation).
//!
//! Uses the library's `recursive_bisection` driver with PROP as the
//! 2-way engine, then repeats the exercise on a multi-FPGA-style variant
//! where macro blocks have 4x the area of standard cells and the balance
//! is on block *area*, not cell count.
//!
//! ```sh
//! cargo run --release --example recursive_kway [k]
//! ```

use prop_suite::core::{recursive_bisection, Prop, PropConfig};
use prop_suite::netlist::{suite, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8);
    let spec = suite::by_name("p2").expect("p2 is in the suite");
    let graph = spec.instantiate()?;
    println!("circuit p2: {}", graph.stats());

    let prop = Prop::new(PropConfig::calibrated());
    let kway = recursive_bisection(&graph, k, 0.45, 0.55, &prop, 3, 0)?;
    println!("{k}-way partition via recursive PROP bisection:");
    println!("  block sizes:  {:?}", kway.block_sizes());
    println!(
        "  k-way cutset: {} of {} nets",
        kway.cut_nets(&graph),
        graph.num_nets()
    );

    // Multi-FPGA variant: 10% of the cells are macro blocks of area 4;
    // each "FPGA" (block) must respect an area budget, which the weighted
    // balance criterion enforces at every bisection level.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = HypergraphBuilder::new(graph.num_nodes());
    for net in graph.nets() {
        b.add_net(1.0, graph.pins_of(net).iter().map(|v| v.index()))?;
    }
    let areas: Vec<f64> = (0..graph.num_nodes())
        .map(|_| if rng.gen::<f64>() < 0.1 { 4.0 } else { 1.0 })
        .collect();
    b.set_node_weights(areas)?;
    let fpga = b.build()?;
    let kway = recursive_bisection(&fpga, k, 0.4, 0.6, &prop, 3, 0)?;
    let weights = kway.block_weights(&fpga);
    println!();
    println!("multi-FPGA variant (10% macro blocks of area 4):");
    println!(
        "  block areas:  {:?}  (total {})",
        weights.iter().map(|w| *w as i64).collect::<Vec<_>>(),
        fpga.total_node_weight()
    );
    println!(
        "  k-way cutset: {} of {} nets (inter-FPGA signals)",
        kway.cut_nets(&fpga),
        fpga.num_nets()
    );
    Ok(())
}
