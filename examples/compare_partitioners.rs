//! Head-to-head comparison of every partitioner in the suite on one
//! circuit — a miniature of the paper's Tables 2 and 3.
//!
//! ```sh
//! cargo run --release --example compare_partitioners [circuit-name]
//! ```

use prop_suite::core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_suite::fm::{FmBucket, FmTree, Kl, La, SimulatedAnnealing};
use prop_suite::multilevel::Multilevel;
use prop_suite::netlist::suite;
use prop_suite::spectral::{Eig1, GlobalPartitioner, MeloStyle, ParaboliStyle, WindowStyle};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "struct".into());
    let spec = suite::by_name(&name)
        .ok_or_else(|| format!("unknown circuit {name:?}; try `balu` or `struct`"))?;
    let graph = spec.instantiate()?;
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    println!("circuit {name}: {}", graph.stats());
    println!("{:<12} {:>8} {:>10}", "method", "cut", "seconds");
    println!("{}", "-".repeat(32));

    let runs = 10;
    let iterative: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("FM-bucket", Box::new(FmBucket::default())),
        ("FM-tree", Box::new(FmTree::default())),
        ("LA-2", Box::new(La::new(2))),
        ("LA-3", Box::new(La::new(3))),
        ("KL", Box::new(Kl::default())),
        ("SA", Box::new(SimulatedAnnealing::default())),
        ("PROP", Box::new(Prop::new(PropConfig::calibrated()))),
    ];
    for (label, p) in iterative {
        let start = Instant::now();
        let result = p.run_multi(&graph, balance, runs, 0)?;
        println!(
            "{:<12} {:>8} {:>10.3}",
            label,
            result.cut_cost,
            start.elapsed().as_secs_f64()
        );
    }
    let global: Vec<(&str, Box<dyn GlobalPartitioner>)> = vec![
        ("EIG1", Box::new(Eig1::default())),
        ("MELO", Box::new(MeloStyle::default())),
        ("PARABOLI", Box::new(ParaboliStyle::default())),
        ("WINDOW", Box::new(WindowStyle { runs, seed: 0 })),
        (
            "ML-PROP",
            Box::new(Multilevel::new(Prop::new(PropConfig::calibrated()))),
        ),
    ];
    for (label, p) in global {
        let start = Instant::now();
        let result = p.partition(&graph, balance)?;
        println!(
            "{:<12} {:>8} {:>10.3}",
            label,
            result.cut_cost,
            start.elapsed().as_secs_f64()
        );
    }
    Ok(())
}
