//! A guided walkthrough of the paper's Figure-1 example: why FM and LA-3
//! cannot tell nodes 1, 2, 3 apart, and how PROP's probabilistic gains
//! do.
//!
//! ```sh
//! cargo run --example figure1_walkthrough
//! ```

use prop_suite::core::example::{figure1, paper_node, V1_NODES};

fn main() {
    let fig = figure1();
    println!("Figure 1: 11 V1 nodes, 17 nets, nets n1-n11 in the cutset.");
    println!();

    let fm = fig.fm_gains();
    println!("FM gains (Eqn. 1) — immediate cut change only:");
    for paper in 1..=V1_NODES {
        print!("  g({paper}) = {:+.0}", fm[paper_node(paper).index()]);
        if paper % 4 == 0 {
            println!();
        }
    }
    println!();
    println!("Nodes 1, 2, 3 tie at +2: FM may move node 1 first, although");
    println!("moving 2 or 3 unlocks further gains through nets n10/n11.");
    println!();

    let gains = fig.second_iteration_gains();
    println!("PROP gains after the second refinement iteration (Eqns. 3-4):");
    for paper in 1..=V1_NODES {
        println!(
            "  g({paper:>2}) = {:+.4}   p = {:.2}",
            gains[paper_node(paper).index()],
            fig.probabilities[paper_node(paper).index()]
        );
    }
    println!();
    println!("The tie is broken: g(3) = 2.64 > g(2) = 2.04 > g(1) = 2.0016,");
    println!("because node 3's companion movers (10, 11, at p = 0.8) are far");
    println!("likelier to follow than node 2's (8, 9, at p = 0.2). Moving 3");
    println!("then 10 and 11 removes nets n5, n8, and n11 from the cutset -");
    println!("exactly the intuition the paper builds the method on.");
}
