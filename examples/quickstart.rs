//! Quickstart: generate a circuit, partition it with PROP, inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use prop_suite::core::{BalanceConstraint, Partitioner, Prop, PropConfig, Side};
use prop_suite::netlist::generate::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic 2000-node circuit with planted cluster structure.
    let graph = generate(&GeneratorConfig::new(2000, 2100, 7400).with_seed(42))?;
    println!("circuit: {}", graph.stats());

    // Partition it 45-55% balanced with PROP, best of 10 seeded runs.
    let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
    let prop = Prop::new(PropConfig::calibrated());
    let result = prop.run_multi(&graph, balance, 10, 0)?;

    println!(
        "PROP best-of-10 cut: {} nets  (per-run cuts: {:?})",
        result.cut_cost, result.run_cuts
    );
    println!(
        "side sizes: {} / {}  (balance window {}..={})",
        result.partition.count(Side::A),
        result.partition.count(Side::B),
        balance.min_part(),
        balance.max_part()
    );
    assert!(result.partition.is_balanced(balance));
    Ok(())
}
