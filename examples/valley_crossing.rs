//! Valley crossing: *why* PROP beats FM.
//!
//! The paper argues (§3) that probabilistic gains let PROP move nodes
//! whose immediate gain is small or negative because a future move will
//! realise the payoff — the pass "rides through valleys" of the cut-cost
//! landscape that FM's greedy immediate gains avoid. This example makes
//! that visible: it traces every PROP pass and reports how deep the
//! committed prefixes dipped below their starting cut before peaking.
//!
//! ```sh
//! cargo run --release --example valley_crossing [circuit-name]
//! ```

use prop_suite::core::{BalanceConstraint, Bipartition, CutState, Prop, PropConfig};
use prop_suite::netlist::suite;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "struct".into());
    let spec = suite::by_name(&name)
        .ok_or_else(|| format!("unknown circuit {name:?}; try `balu` or `struct`"))?;
    let graph = spec.instantiate()?;
    let balance = BalanceConstraint::bisection(graph.num_nodes());
    let prop = Prop::new(PropConfig::calibrated());

    let mut rng = StdRng::seed_from_u64(0);
    let mut partition = Bipartition::random(graph.num_nodes(), &mut rng);
    let start_cut = CutState::new(&graph, &partition).cut_cost();
    let (stats, traces) = prop.improve_traced(&graph, &mut partition, balance);

    println!("circuit {name}: initial cut {start_cut}, final cut {}", stats.cut_cost);
    println!();
    println!(
        "{:>4}  {:>9}  {:>9}  {:>9}  {:>9}",
        "pass", "tentative", "committed", "gain", "drawdown"
    );
    let mut deepest: f64 = 0.0;
    for (i, t) in traces.iter().enumerate() {
        println!(
            "{:>4}  {:>9}  {:>9}  {:>9.1}  {:>9.1}",
            i + 1,
            t.tentative_moves,
            t.committed_moves,
            t.committed_gain,
            t.max_drawdown
        );
        deepest = deepest.min(t.max_drawdown);
    }
    println!();
    if deepest < 0.0 {
        println!(
            "the committed prefixes dipped as far as {deepest:.0} below their \
             starting cut before\npeaking — exactly the through-the-valley moves \
             the probabilistic gain is designed\nto select, which greedy immediate \
             gains would never take."
        );
    } else {
        println!("no valley was needed on this run; try another circuit or seed.");
    }
    Ok(())
}
