//! Timing-driven partitioning: weighted nets.
//!
//! The paper motivates non-unit net costs for timing minimisation
//! (critical nets weighted heavier so they are kept short / uncut, §1),
//! and notes FM's bucket structure no longer applies — the tree-based
//! structures of FM-tree and PROP do. This example marks a random 5% of
//! nets as timing-critical (weight 10) and compares the weighted cuts.
//!
//! ```sh
//! cargo run --release --example timing_driven
//! ```

use prop_suite::core::{BalanceConstraint, CutState, Partitioner, Prop, PropConfig};
use prop_suite::fm::FmTree;
use prop_suite::netlist::{generate::GeneratorConfig, suite, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Rebuild `balu`'s proxy with 5% critical nets of weight 10.
    let spec = suite::by_name("balu").expect("balu is in the suite");
    let base = prop_suite::netlist::generate::generate(&GeneratorConfig {
        ..spec.generator_config()
    })?;
    let mut rng = StdRng::seed_from_u64(99);
    let mut builder = HypergraphBuilder::new(base.num_nodes());
    let mut critical = 0;
    for net in base.nets() {
        let weight = if rng.gen::<f64>() < 0.05 {
            critical += 1;
            10.0
        } else {
            1.0
        };
        builder.add_net(weight, base.pins_of(net).iter().map(|v| v.index()))?;
    }
    let graph = builder.build()?;
    println!(
        "balu with {critical} timing-critical nets (weight 10) of {}",
        graph.num_nets()
    );

    let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
    let runs = 10;
    for (label, result) in [
        (
            "FM-tree",
            FmTree::default().run_multi(&graph, balance, runs, 0)?,
        ),
        (
            "PROP",
            Prop::new(PropConfig::calibrated()).run_multi(&graph, balance, runs, 0)?,
        ),
    ] {
        let cut = CutState::new(&graph, &result.partition);
        // Count how many *critical* nets ended up cut.
        let critical_cut = graph
            .nets()
            .filter(|&n| graph.net_weight(n) > 1.0 && cut.is_cut(n))
            .count();
        println!(
            "{label:<8} weighted cut = {:>7.1}   cut nets = {:>4}   critical nets cut = {}",
            result.cut_cost,
            cut.cut_nets(),
            critical_cut
        );
    }
    Ok(())
}
